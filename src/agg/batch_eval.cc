#include "agg/batch_eval.h"

#include <algorithm>

#include "agg/rollup.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace olap {

namespace {

// Batched-evaluation accounting. Every counter is a deterministic function
// of the query (never of the thread count); the stats contract suite
// asserts the closure refs == leaf + view_served + residual + null_scope.
struct BatchMetrics {
  Counter* plans;
  Counter* views_materialized;
  Counter* view_cells;
  Counter* refs;
  Counter* leaf;
  Counter* view_served;
  Counter* residual;
  Counter* null_scope;

  static const BatchMetrics& Get() {
    static BatchMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return BatchMetrics{reg.counter("agg.batch.plans"),
                          reg.counter("agg.batch.views_materialized"),
                          reg.counter("agg.batch.view_cells"),
                          reg.counter("agg.batch.refs"),
                          reg.counter("agg.batch.leaf"),
                          reg.counter("agg.batch.view_served"),
                          reg.counter("agg.batch.residual"),
                          reg.counter("agg.batch.null_scope")};
    }();
    return m;
  }
};

// Shares the counter names (and the lookups == hits + misses closure) with
// AggregateCache::TryAnswer.
struct SharedCacheMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* misses;

  static const SharedCacheMetrics& Get() {
    static SharedCacheMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return SharedCacheMetrics{reg.counter("agg.cache.lookups"),
                                reg.counter("agg.cache.hits"),
                                reg.counter("agg.cache.misses")};
    }();
    return m;
  }
};

uint64_t ScopeKey(const AxisRef& ref) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(ref.member)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(ref.instance));
}

// Weighted sum of `view` over the cross product of per-kept-dimension
// scopes, via direct strided indexing. ⊥ view cells are skipped; the sum of
// only-⊥ cells is ⊥ — matching SumOverScopeWeighted on the leaves, because
// a view cell is ⊥ exactly when every leaf in its fiber is ⊥.
CellValue WeightedViewSum(
    const GroupByResult& view,
    const std::vector<const std::vector<std::pair<int, double>>*>& scopes) {
  const std::vector<int64_t>& strides = view.strides();
  const double* cells = view.raw_cells();  // Sentinel-encoded, no round-trip.
  const size_t k = scopes.size();
  CellValue sum;
  std::vector<int> idx(k, 0);
  while (true) {
    int64_t index = 0;
    double weight = 1.0;
    for (size_t i = 0; i < k; ++i) {
      const auto& [pos, w] = (*scopes[i])[idx[i]];
      index += pos * strides[i];
      weight *= w;
    }
    const double v = cells[index];
    if (!CellValue::IsStorageNull(v)) sum += CellValue(v * weight);
    size_t d = k;
    bool done = true;
    while (d-- > 0) {
      if (++idx[d] < static_cast<int>(scopes[d]->size())) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (k == 0 || done) break;
  }
  return sum;
}

}  // namespace

BatchCellEvaluator::BatchCellEvaluator(const Cube& data,
                                       const AggregateCache* persistent,
                                       const BatchEvalOptions& options)
    : data_(data), persistent_(persistent), options_(options) {
  root_droppable_.resize(data_.num_dims());
  for (int d = 0; d < data_.num_dims(); ++d) {
    root_droppable_[d] = persistent_ != nullptr
                             ? (persistent_->root_droppable(d) ? 1 : 0)
                             : (RootScopeIsUnitCover(data_, d) ? 1 : 0);
  }
  scopes_.resize(data_.num_dims());
}

BatchCellEvaluator::~BatchCellEvaluator() {
  if (reserved_cells_ > 0 && options_.release_cells) {
    options_.release_cells(reserved_cells_);
  }
}

const BatchCellEvaluator::ScopeEntry& BatchCellEvaluator::ScopeOf(
    int dim, const AxisRef& ref) {
  auto [it, inserted] = scopes_[dim].try_emplace(ScopeKey(ref));
  if (inserted) {
    // A ref from a wider (what-if augmented) schema — e.g. an introduced
    // member evaluated non-visually against the input cube — is unknown
    // here. Leave its scope empty: the perspective cube evaluates such
    // refs on its output cube and never serves them from this evaluator.
    const Dimension& d = data_.schema().dimension(dim);
    const bool in_schema =
        ref.member >= 0 && ref.member < d.num_members() &&
        (ref.instance == kInvalidInstance || ref.instance < d.num_instances());
    if (in_schema) {
      it->second.positions = data_.PositionsUnderWeighted(dim, ref);
    }
  }
  return it->second;
}

bool BatchCellEvaluator::NeedsBit(int dim, const AxisRef& ref) const {
  if (ref.instance != kInvalidInstance) return true;
  if (ref.member != data_.schema().dimension(dim).root()) return true;
  return root_droppable_[dim] == 0;
}

BatchCellEvaluator::MaskPatch BatchCellEvaluator::PatchFor(
    const std::vector<std::pair<int, AxisRef>>& overrides) {
  MaskPatch patch;
  for (const auto& [dim, ref] : overrides) {
    const GroupByMask bit = GroupByMask{1} << dim;
    patch.clear |= bit;
    if (NeedsBit(dim, ref)) {
      patch.set |= bit;
    } else {
      patch.set &= ~bit;  // A later override of the same dimension wins.
    }
    ScopeOf(dim, ref);  // Warm the scope cache for evaluation time.
  }
  return patch;
}

void BatchCellEvaluator::PrepareGrid(
    const CellRef& base,
    const std::vector<std::vector<std::pair<int, AxisRef>>>& row_overrides,
    const std::vector<std::vector<std::pair<int, AxisRef>>>& col_overrides) {
  GroupByMask base_mask = 0;
  for (int d = 0; d < data_.num_dims(); ++d) {
    if (NeedsBit(d, base[d])) base_mask |= GroupByMask{1} << d;
    ScopeOf(d, base[d]);
  }
  std::vector<MaskPatch> row_patches, col_patches;
  row_patches.reserve(row_overrides.size());
  for (const auto& o : row_overrides) row_patches.push_back(PatchFor(o));
  col_patches.reserve(col_overrides.size());
  for (const auto& o : col_overrides) col_patches.push_back(PatchFor(o));

  std::unordered_map<GroupByMask, int64_t> mask_counts;
  for (const MaskPatch& r : row_patches) {
    const GroupByMask row_mask = (base_mask & ~r.clear) | r.set;
    for (const MaskPatch& c : col_patches) {
      mask_counts[(row_mask & ~c.clear) | c.set] += 1;
    }
  }
  PlanAndMaterialize(mask_counts);
}

void BatchCellEvaluator::PrepareRefs(const std::vector<CellRef>& refs) {
  std::unordered_map<GroupByMask, int64_t> mask_counts;
  std::vector<int> leaf_coords;
  for (const CellRef& ref : refs) {
    // Refs from a wider (augmented) schema are not servable here; see
    // ScopeOf. Skipping them keeps IsLeafRef within bounds.
    bool in_schema = true;
    for (int d = 0; d < data_.num_dims() && in_schema; ++d) {
      const Dimension& dim = data_.schema().dimension(d);
      in_schema = ref[d].member >= 0 && ref[d].member < dim.num_members() &&
                  (ref[d].instance == kInvalidInstance ||
                   ref[d].instance < dim.num_instances());
    }
    if (!in_schema) continue;
    GroupByMask mask = 0;
    for (int d = 0; d < data_.num_dims(); ++d) {
      if (NeedsBit(d, ref[d])) mask |= GroupByMask{1} << d;
      ScopeOf(d, ref[d]);
    }
    if (data_.IsLeafRef(ref, &leaf_coords)) continue;  // Direct reads.
    mask_counts[mask] += 1;
  }
  PlanAndMaterialize(mask_counts);
}

void BatchCellEvaluator::PlanAndMaterialize(
    const std::unordered_map<GroupByMask, int64_t>& mask_counts) {
  TraceSpan span("agg.batch.plan");
  const GroupByMask full_mask =
      data_.num_dims() >= 32 ? ~GroupByMask{0}
                             : (GroupByMask{1} << data_.num_dims()) - 1;
  Lattice lattice(data_.layout());

  struct Candidate {
    GroupByMask mask;
    int64_t count;
    int64_t cells;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(mask_counts.size());
  for (const auto& [mask, count] : mask_counts) {
    if (mask == full_mask) continue;  // Its view is the raw cube.
    if (count < options_.min_refs_per_view) continue;
    if (persistent_ != nullptr &&
        persistent_->SmallestCovering(mask) != nullptr) {
      continue;  // Already materialized persistently.
    }
    const int64_t cells = lattice.OutputCells(mask);
    if (cells > options_.max_view_cells) continue;
    candidates.push_back({mask, count, cells});
  }
  // Superset absorption: every materialized mask costs one AccumulateAt per
  // scanned cube cell, while serving mask m from an already-planned
  // superset V only scales each ref's scope product by cells(V)/cells(m)
  // (= Π extents of V\m — those dimensions are droppable roots, so their
  // scope is the full leaf range). When the extra serving work is below the
  // accumulation pass it would save, drop m and let SmallestCovering route
  // its refs to V. Widest masks first, so absorbers are settled before the
  // masks they can absorb.
  if (candidates.size() > 1) {
    const double scan_cost = static_cast<double>(data_.CountNonNullCells());
    auto bits = [](GroupByMask m) {
      int n = 0;
      for (; m != 0; m &= m - 1) ++n;
      return n;
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](const Candidate& a, const Candidate& b) {
                const int ba = bits(a.mask), bb = bits(b.mask);
                if (ba != bb) return ba > bb;
                if (a.count != b.count) return a.count > b.count;
                return a.mask < b.mask;
              });
    std::vector<Candidate> kept;
    kept.reserve(candidates.size());
    for (const Candidate& c : candidates) {
      bool absorbed = false;
      for (const Candidate& v : kept) {
        if ((v.mask & c.mask) != c.mask || v.mask == c.mask) continue;
        const double ratio =
            static_cast<double>(v.cells) / static_cast<double>(c.cells);
        if (static_cast<double>(c.count) * ratio <= scan_cost) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) kept.push_back(c);
    }
    candidates = std::move(kept);
  }
  // Most-referenced masks first; deterministic tie-breaks.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.cells != b.cells) return a.cells < b.cells;
              return a.mask < b.mask;
            });
  if (static_cast<int>(candidates.size()) > options_.max_views) {
    candidates.resize(options_.max_views);
  }

  const BatchMetrics& bm = BatchMetrics::Get();
  bm.plans->Increment();
  scratch_.reset();
  if (candidates.empty()) {
    span.SetDetail("views=0");
    return;
  }
  std::vector<GroupByMask> masks;
  masks.reserve(candidates.size());
  int64_t total_cells = 0;
  for (const Candidate& c : candidates) {
    masks.push_back(c.mask);
    total_cells += c.cells;
  }
  // Governor budget gate: scratch views are the evaluator's one large
  // optional allocation, so the whole plan is reserved up front. A denial
  // is the first degradation rung — every ref falls back to the per-cell
  // path, which needs no scratch memory at all.
  if (options_.try_reserve_cells && !options_.try_reserve_cells(total_cells)) {
    static Counter* denied =
        MetricsRegistry::Global().counter("agg.batch.budget_denied");
    denied->Increment();
    if (options_.on_degrade) options_.on_degrade("batched_eval_off");
    span.SetDetail("views=0 budget_denied");
    return;
  }
  reserved_cells_ = total_cells;

  // Deterministic view order regardless of ref-count ranking.
  std::sort(masks.begin(), masks.end());
  if (options_.out_of_core_disk != nullptr) {
    ChunkAggregator::OutOfCoreOptions ooc;
    ooc.pipelined = options_.pipelined_io;
    ooc.pipeline = options_.pipeline;
    ooc.cancel = options_.cancel;
    ooc.on_degrade = options_.on_degrade;
    scratch_.emplace(data_, masks, options_.out_of_core_disk, ooc,
                     options_.threads);
  } else {
    scratch_.emplace(data_, masks, options_.threads, options_.cancel);
  }
  // Never publish a partially-materialized cache: a pass interrupted by
  // cancellation is dropped whole, and the budget reservation returned —
  // the evaluator remains valid (per-cell path) for any caller that
  // chooses to keep going.
  if (options_.cancel.ShouldStop()) {
    scratch_.reset();
    if (options_.release_cells) options_.release_cells(reserved_cells_);
    reserved_cells_ = 0;
    span.SetDetail("views=0 cancelled");
    return;
  }
  bm.views_materialized->Increment(static_cast<int64_t>(masks.size()));
  bm.view_cells->Increment(total_cells);
  span.SetDetail("views=" + std::to_string(masks.size()) +
                 " cells=" + std::to_string(total_cells));
}

CellValue BatchCellEvaluator::Evaluate(const CellRef& ref) const {
  const BatchMetrics& bm = BatchMetrics::Get();
  bm.refs->Increment();
  std::vector<int> leaf_coords;
  if (data_.IsLeafRef(ref, &leaf_coords)) {
    bm.leaf->Increment();
    return data_.GetCell(leaf_coords);
  }

  // Gather per-dimension weighted scopes (read-only cache lookups; refs not
  // seen at Prepare time — e.g. rule operands — resolve locally).
  const int n = data_.num_dims();
  GroupByMask needed = 0;
  std::vector<const std::vector<std::pair<int, double>>*> scope_of(n, nullptr);
  std::vector<std::vector<std::pair<int, double>>> local;
  local.reserve(n);
  bool empty_scope = false;
  for (int d = 0; d < n; ++d) {
    auto it = scopes_[d].find(ScopeKey(ref[d]));
    if (it != scopes_[d].end()) {
      scope_of[d] = &it->second.positions;
    } else {
      local.push_back(data_.PositionsUnderWeighted(d, ref[d]));
      scope_of[d] = &local.back();
    }
    if (scope_of[d]->empty()) empty_scope = true;
    if (NeedsBit(d, ref[d])) needed |= GroupByMask{1} << d;
  }

  const AggregateCache* accounting =
      scratch_.has_value() ? &*scratch_ : persistent_;
  if (empty_scope) {
    // An empty scope along any dimension makes the cell ⊥ (matching
    // SumOverScopeWeighted); counted as a served answer like TryAnswer's
    // empty-positions path.
    bm.null_scope->Increment();
    if (accounting != nullptr) {
      SharedCacheMetrics::Get().lookups->Increment();
      SharedCacheMetrics::Get().hits->Increment();
      ++accounting->hits;
    }
    return CellValue::Null();
  }

  // Smallest covering view across the scratch and persistent caches.
  const AggregateCache* owner = nullptr;
  const GroupByResult* view = nullptr;
  for (const AggregateCache* cache :
       {static_cast<const AggregateCache*>(scratch_.has_value() ? &*scratch_
                                                                : nullptr),
        persistent_}) {
    if (cache == nullptr) continue;
    const GroupByResult* covering = cache->SmallestCovering(needed);
    if (covering == nullptr) continue;
    if (view == nullptr || covering->num_cells() < view->num_cells()) {
      view = covering;
      owner = cache;
    }
  }

  if (view != nullptr) {
    const std::vector<int>& kept = view->kept_dims();
    std::vector<const std::vector<std::pair<int, double>>*> scopes(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) scopes[i] = scope_of[kept[i]];
    bm.view_served->Increment();
    SharedCacheMetrics::Get().lookups->Increment();
    SharedCacheMetrics::Get().hits->Increment();
    ++owner->hits;
    return WeightedViewSum(*view, scopes);
  }

  // Residual: no view covers the needed mask — leaf roll-up.
  bm.residual->Increment();
  if (accounting != nullptr) {
    SharedCacheMetrics::Get().lookups->Increment();
    SharedCacheMetrics::Get().misses->Increment();
    ++accounting->misses;
  }
  std::vector<std::vector<std::pair<int, double>>> positions(n);
  for (int d = 0; d < n; ++d) positions[d] = *scope_of[d];
  return SumOverScopeWeighted(data_, positions);
}

}  // namespace olap
