#ifndef OLAP_AGG_VIEW_SELECTION_H_
#define OLAP_AGG_VIEW_SELECTION_H_

#include <cstdint>
#include <vector>

#include "agg/lattice.h"

namespace olap {

// Greedy view selection over the group-by lattice — Harinarayan, Rajaraman
// & Ullman's algorithm ("Implementing Data Cubes Efficiently", SIGMOD'96),
// which the paper cites as the basis for its "workload aware view
// selection (a la [7])" future-work direction (Sec. 8).
//
// Model: a group-by w can be answered from any materialized view v with
// w ⊆ v, at a cost equal to |v| (cells scanned). The raw cube (full mask)
// is always materialized. Materializing v lowers the cost of every w ⊆ v
// to at most |v|; the benefit of v is the total cost reduction across the
// lattice. Greedy picks the best view k times.

struct SelectedViews {
  std::vector<GroupByMask> views;   // In selection order; excludes the root.
  std::vector<int64_t> benefits;    // Benefit of each pick at pick time.
  int64_t initial_cost = 0;         // Σ costs with only the raw cube.
  int64_t final_cost = 0;           // Σ costs with all picks materialized.
};

// Cost of answering `mask` given `materialized` views (the full mask is
// implicitly available): min |v| over v ⊇ mask.
int64_t AnswerCost(const Lattice& lattice, GroupByMask mask,
                   const std::vector<GroupByMask>& materialized);

// Total cost of answering every group-by of the lattice.
int64_t TotalAnswerCost(const Lattice& lattice,
                        const std::vector<GroupByMask>& materialized);

// Runs HRU greedy for `k` picks (fewer if the lattice is exhausted or no
// pick has positive benefit).
SelectedViews SelectViewsGreedy(const Lattice& lattice, int k);

}  // namespace olap

#endif  // OLAP_AGG_VIEW_SELECTION_H_
