#include "agg/aggregate_cache.h"

#include <numeric>

#include "common/metrics.h"

namespace olap {

namespace {

// Cache accounting contract (asserted by the stats contract suite):
// lookups == hits + misses, always.
struct CacheMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* misses;

  static const CacheMetrics& Get() {
    static CacheMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return CacheMetrics{reg.counter("agg.cache.lookups"),
                          reg.counter("agg.cache.hits"),
                          reg.counter("agg.cache.misses")};
    }();
    return m;
  }
};

}  // namespace

// True when the root's weighted scope of dimension `dim` covers every axis
// position exactly once with weight 1.0 — the condition under which a view
// that summed the dimension away (all positions, weight 1) agrees with the
// root roll-up.
bool RootScopeIsUnitCover(const Cube& cube, int dim) {
  const int extent = cube.layout().extents()[dim];
  const AxisRef root = AxisRef::OfMember(cube.schema().dimension(dim).root());
  std::vector<std::pair<int, double>> scope =
      cube.PositionsUnderWeighted(dim, root);
  if (static_cast<int>(scope.size()) != extent) return false;
  std::vector<char> seen(extent, 0);
  for (const auto& [pos, weight] : scope) {
    if (weight != 1.0 || pos < 0 || pos >= extent || seen[pos]) return false;
    seen[pos] = 1;
  }
  return true;
}

AggregateCache::AggregateCache(const Cube& cube,
                               const std::vector<GroupByMask>& masks,
                               int threads, const CancellationToken& cancel)
    : masks_(masks) {
  ChunkAggregator aggregator(cube);
  std::vector<int> order(cube.num_dims());
  std::iota(order.begin(), order.end(), 0);
  views_ = aggregator.Compute(masks_, order, /*disk=*/nullptr, threads, cancel);
  root_droppable_.resize(cube.num_dims());
  for (int d = 0; d < cube.num_dims(); ++d) {
    root_droppable_[d] = RootScopeIsUnitCover(cube, d) ? 1 : 0;
  }
}

AggregateCache::AggregateCache(const Cube& cube,
                               const std::vector<GroupByMask>& masks,
                               SimulatedDisk* disk,
                               const ChunkAggregator::OutOfCoreOptions& options,
                               int threads)
    : masks_(masks) {
  ChunkAggregator aggregator(cube);
  std::vector<int> order(cube.num_dims());
  std::iota(order.begin(), order.end(), 0);
  Result<std::vector<GroupByResult>> streamed =
      disk != nullptr
          ? aggregator.ComputeOutOfCore(masks_, order, disk, options)
          : Result<std::vector<GroupByResult>>(
                Status(StatusCode::kFailedPrecondition, "no disk"));
  if (streamed.ok()) {
    views_ = *std::move(streamed);
  } else if (streamed.status().code() == StatusCode::kCancelled ||
             streamed.status().code() == StatusCode::kDeadlineExceeded) {
    // The query is being torn down; a full in-memory scan now would be
    // wasted work. Leave the cache empty — the owner must discard it.
  } else {
    // The in-memory pass is always available and value-equivalent.
    views_ = aggregator.Compute(masks_, order, /*disk=*/nullptr, threads,
                                options.cancel);
  }
  root_droppable_.resize(cube.num_dims());
  for (int d = 0; d < cube.num_dims(); ++d) {
    root_droppable_[d] = RootScopeIsUnitCover(cube, d) ? 1 : 0;
  }
}

AggregateCache AggregateCache::BuildGreedy(const Cube& cube, int max_views) {
  Lattice lattice(cube.layout());
  SelectedViews selected = SelectViewsGreedy(lattice, max_views);
  return AggregateCache(cube, selected.views);
}

int64_t AggregateCache::TotalCells() const {
  int64_t total = 0;
  for (const GroupByResult& view : views_) total += view.num_cells();
  return total;
}

const GroupByResult* AggregateCache::SmallestCovering(GroupByMask needed) const {
  int best = -1;
  for (int i = 0; i < num_views(); ++i) {
    if ((needed & masks_[i]) != needed) continue;
    if (best < 0 || views_[i].num_cells() < views_[best].num_cells()) best = i;
  }
  return best < 0 ? nullptr : &views_[best];
}

std::optional<CellValue> AggregateCache::TryAnswer(const Cube& cube,
                                                   const CellRef& ref) const {
  CacheMetrics::Get().lookups->Increment();
  // Dimensions a view must keep: anything the ref restricts (not the root),
  // plus root dimensions whose consolidation weights make the view's plain
  // dropped-dimension sum differ from the root roll-up.
  GroupByMask needed = 0;
  for (int d = 0; d < cube.num_dims(); ++d) {
    if (ref[d].instance != kInvalidInstance ||
        ref[d].member != cube.schema().dimension(d).root() ||
        !root_droppable(d)) {
      needed |= GroupByMask{1} << d;
    }
  }
  const GroupByResult* covering = SmallestCovering(needed);
  if (covering == nullptr) {
    ++misses;
    CacheMetrics::Get().misses->Increment();
    return std::nullopt;
  }
  const GroupByResult& view = *covering;

  // Sum the view over the cross product of the ref's weighted position
  // scopes along the view's kept dimensions (consolidation weights apply
  // at answer time; the views themselves are plain position sums).
  const std::vector<int>& kept = view.kept_dims();
  std::vector<std::vector<std::pair<int, double>>> positions(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    positions[i] = cube.PositionsUnderWeighted(kept[i], ref[kept[i]]);
    if (positions[i].empty()) {
      ++hits;
      CacheMetrics::Get().hits->Increment();
      return CellValue::Null();
    }
  }
  CellValue sum;
  const std::vector<int64_t>& strides = view.strides();
  const double* cells = view.raw_cells();  // Sentinel-encoded, no round-trip.
  std::vector<int> idx(kept.size(), 0);
  while (true) {
    double weight = 1.0;
    int64_t index = 0;
    for (size_t i = 0; i < kept.size(); ++i) {
      index += positions[i][idx[i]].first * strides[i];
      weight *= positions[i][idx[i]].second;
    }
    const double v = cells[index];
    if (!CellValue::IsStorageNull(v)) sum += CellValue(v * weight);
    size_t d = kept.size();
    bool done = true;
    while (d-- > 0) {
      if (++idx[d] < static_cast<int>(positions[d].size())) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (kept.empty() || done) break;
  }
  ++hits;
  CacheMetrics::Get().hits->Increment();
  return sum;
}

}  // namespace olap
