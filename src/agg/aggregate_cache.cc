#include "agg/aggregate_cache.h"

#include <numeric>

#include "common/metrics.h"

namespace olap {

namespace {

// Cache accounting contract (asserted by the stats contract suite):
// lookups == hits + misses, always.
struct CacheMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* views_kept;
  Counter* views_dropped;

  static const CacheMetrics& Get() {
    static CacheMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return CacheMetrics{reg.counter("agg.cache.lookups"),
                          reg.counter("agg.cache.hits"),
                          reg.counter("agg.cache.misses"),
                          reg.counter("cache.evictions"),
                          reg.counter("cache.invalidate.views_kept"),
                          reg.counter("cache.invalidate.views_dropped")};
    }();
    return m;
  }
};

// Restores ⊥ on every cell of `view` inside the projection box of chunk
// `id` whose contribution count is zero. The box (per kept dimension, the
// chunk's clipped coordinate range) is the only region a chunk swap can
// have zeroed.
void SweepZeroCounts(const ChunkLayout& layout, ChunkId id,
                     GroupByResult* view, const int32_t* counts) {
  const double null_storage = CellValue::ToStorage(CellValue::Null());
  const std::vector<int>& kept = view->kept_dims();
  double* cells = view->mutable_raw_cells();
  if (kept.empty()) {
    if (counts[0] == 0) cells[0] = null_storage;
    return;
  }
  const std::vector<int> base = layout.ChunkBase(id);
  const std::vector<int>& csize = layout.chunk_sizes();
  const size_t k = kept.size();
  std::vector<int> lo(k), hi(k), pos(k);
  int64_t idx = 0;
  for (size_t i = 0; i < k; ++i) {
    lo[i] = base[kept[i]];
    hi[i] = std::min(base[kept[i]] + csize[kept[i]], view->extents()[i]);
    if (lo[i] >= hi[i]) return;  // Fully padded projection: nothing stored.
    pos[i] = lo[i];
    idx += static_cast<int64_t>(lo[i]) * view->strides()[i];
  }
  const std::vector<int64_t>& strides = view->strides();
  while (true) {
    if (counts[idx] == 0) cells[idx] = null_storage;
    size_t d = k;
    bool done = true;
    while (d-- > 0) {
      ++pos[d];
      idx += strides[d];
      if (pos[d] < hi[d]) {
        done = false;
        break;
      }
      idx -= static_cast<int64_t>(pos[d] - lo[d]) * strides[d];
      pos[d] = lo[d];
    }
    if (done) break;
  }
}

}  // namespace

// True when the root's weighted scope of dimension `dim` covers every axis
// position exactly once with weight 1.0 — the condition under which a view
// that summed the dimension away (all positions, weight 1) agrees with the
// root roll-up.
bool RootScopeIsUnitCover(const Cube& cube, int dim) {
  const int extent = cube.layout().extents()[dim];
  const AxisRef root = AxisRef::OfMember(cube.schema().dimension(dim).root());
  std::vector<std::pair<int, double>> scope =
      cube.PositionsUnderWeighted(dim, root);
  if (static_cast<int>(scope.size()) != extent) return false;
  std::vector<char> seen(extent, 0);
  for (const auto& [pos, weight] : scope) {
    if (weight != 1.0 || pos < 0 || pos >= extent || seen[pos]) return false;
    seen[pos] = 1;
  }
  return true;
}

AggregateCache::AggregateCache(const Cube& cube,
                               const std::vector<GroupByMask>& masks,
                               int threads, const CancellationToken& cancel)
    : masks_(masks) {
  ChunkAggregator aggregator(cube);
  std::vector<int> order(cube.num_dims());
  std::iota(order.begin(), order.end(), 0);
  views_ = aggregator.Compute(masks_, order, /*disk=*/nullptr, threads, cancel);
  root_droppable_.resize(cube.num_dims());
  for (int d = 0; d < cube.num_dims(); ++d) {
    root_droppable_[d] = RootScopeIsUnitCover(cube, d) ? 1 : 0;
  }
  resident_.assign(views_.size(), 1);
  last_use_ = std::make_unique<std::atomic<int64_t>[]>(views_.size());
}

AggregateCache::AggregateCache(const Cube& cube,
                               const std::vector<GroupByMask>& masks,
                               SimulatedDisk* disk,
                               const ChunkAggregator::OutOfCoreOptions& options,
                               int threads)
    : masks_(masks) {
  ChunkAggregator aggregator(cube);
  std::vector<int> order(cube.num_dims());
  std::iota(order.begin(), order.end(), 0);
  Result<std::vector<GroupByResult>> streamed =
      disk != nullptr
          ? aggregator.ComputeOutOfCore(masks_, order, disk, options)
          : Result<std::vector<GroupByResult>>(
                Status(StatusCode::kFailedPrecondition, "no disk"));
  if (streamed.ok()) {
    views_ = *std::move(streamed);
  } else if (streamed.status().code() == StatusCode::kCancelled ||
             streamed.status().code() == StatusCode::kDeadlineExceeded) {
    // The query is being torn down; a full in-memory scan now would be
    // wasted work. Leave the cache empty — the owner must discard it.
  } else {
    // The in-memory pass is always available and value-equivalent.
    views_ = aggregator.Compute(masks_, order, /*disk=*/nullptr, threads,
                                options.cancel);
  }
  root_droppable_.resize(cube.num_dims());
  for (int d = 0; d < cube.num_dims(); ++d) {
    root_droppable_[d] = RootScopeIsUnitCover(cube, d) ? 1 : 0;
  }
  resident_.assign(views_.size(), 1);
  last_use_ = std::make_unique<std::atomic<int64_t>[]>(views_.size());
}

AggregateCache AggregateCache::BuildGreedy(const Cube& cube, int max_views) {
  Lattice lattice(cube.layout());
  SelectedViews selected = SelectViewsGreedy(lattice, max_views);
  return AggregateCache(cube, selected.views);
}

int64_t AggregateCache::TotalCells() const {
  int64_t total = 0;
  for (int i = 0; i < num_views(); ++i) {
    if (resident_[i]) total += views_[i].num_cells();
  }
  return total;
}

void AggregateCache::TouchView(int g) const {
  last_use_[g].store(use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
}

const GroupByResult* AggregateCache::SmallestCovering(GroupByMask needed) const {
  int best = -1;
  for (int i = 0; i < num_views(); ++i) {
    if (!resident_[i] || (needed & masks_[i]) != needed) continue;
    if (best < 0 || views_[i].num_cells() < views_[best].num_cells()) best = i;
  }
  if (best < 0) return nullptr;
  TouchView(best);
  return &views_[best];
}

void AggregateCache::EnableIncrementalMaintenance(const Cube& cube) {
  counts_.assign(views_.size(), {});
  for (size_t g = 0; g < views_.size(); ++g) {
    if (resident_[g]) {
      counts_[g].assign(static_cast<size_t>(views_[g].num_cells()), 0);
    }
  }
  const ChunkLayout& layout = cube.layout();
  cube.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    for (size_t g = 0; g < views_.size(); ++g) {
      if (!resident_[g]) continue;
      AccumulateChunkIntoGroupByWeighted(layout, id, chunk, 1.0, &views_[g],
                                         counts_[g].data(),
                                         /*update_values=*/false);
    }
  });
  incremental_ = true;
}

void AggregateCache::PatchChunkDelta(const ChunkLayout& layout, ChunkId id,
                                     const Chunk* before, const Chunk* after) {
  if (!incremental_) {
    DropResidentViews();
    return;
  }
  int64_t kept = 0;
  for (size_t g = 0; g < views_.size(); ++g) {
    if (!resident_[g]) continue;
    GroupByResult* view = &views_[g];
    int32_t* counts = counts_[g].data();
    if (before != nullptr) {
      AccumulateChunkIntoGroupByWeighted(layout, id, *before, -1.0, view,
                                         counts);
    }
    if (after != nullptr) {
      AccumulateChunkIntoGroupByWeighted(layout, id, *after, 1.0, view,
                                         counts);
    }
    SweepZeroCounts(layout, id, view, counts);
    ++kept;
  }
  CacheMetrics::Get().views_kept->Increment(kept);
}

void AggregateCache::PatchCellDelta(const std::vector<int>& coords,
                                    double old_storage, double new_storage) {
  if (!incremental_) {
    DropResidentViews();
    return;
  }
  const double null_storage = CellValue::ToStorage(CellValue::Null());
  const bool had_old = !CellValue::IsStorageNull(old_storage);
  const bool has_new = !CellValue::IsStorageNull(new_storage);
  int64_t kept = 0;
  for (size_t g = 0; g < views_.size(); ++g) {
    if (!resident_[g]) continue;
    GroupByResult& view = views_[g];
    const std::vector<int>& dims = view.kept_dims();
    int64_t idx = 0;
    for (size_t i = 0; i < dims.size(); ++i) {
      idx += static_cast<int64_t>(coords[dims[i]]) * view.strides()[i];
    }
    int32_t& count = counts_[g][idx];
    if (had_old) {
      view.AccumulateAt(idx, CellValue(-old_storage));
      --count;
    }
    if (has_new) {
      view.AccumulateAt(idx, CellValue(new_storage));
      ++count;
    }
    if (count == 0) view.mutable_raw_cells()[idx] = null_storage;
    ++kept;
  }
  CacheMetrics::Get().views_kept->Increment(kept);
}

void AggregateCache::DropResidentViews() {
  int64_t dropped = 0;
  for (size_t g = 0; g < views_.size(); ++g) {
    if (!resident_[g]) continue;
    views_[g] = GroupByResult();
    if (g < counts_.size()) {
      counts_[g].clear();
      counts_[g].shrink_to_fit();
    }
    resident_[g] = 0;
    ++dropped;
  }
  incremental_ = false;
  CacheMetrics::Get().views_dropped->Increment(dropped);
}

void AggregateCache::SetCapacity(int64_t max_cells) {
  capacity_cells_ = max_cells;
  EnforceCapacity();
}

void AggregateCache::EnforceCapacity() {
  if (capacity_cells_ < 0) return;
  int64_t total = TotalCells();
  while (total > capacity_cells_) {
    int victim = -1;
    int64_t victim_use = 0;
    for (int i = 0; i < num_views(); ++i) {
      if (!resident_[i]) continue;
      const int64_t use = last_use_[i].load(std::memory_order_relaxed);
      if (victim < 0 || use < victim_use ||
          (use == victim_use &&
           views_[i].num_cells() > views_[victim].num_cells())) {
        victim = i;
        victim_use = use;
      }
    }
    if (victim < 0) break;  // Nothing resident left to evict.
    total -= views_[victim].num_cells();
    views_[victim] = GroupByResult();
    if (static_cast<size_t>(victim) < counts_.size()) {
      counts_[victim].clear();
      counts_[victim].shrink_to_fit();
    }
    resident_[victim] = 0;
    CacheMetrics::Get().evictions->Increment();
  }
}

std::optional<CellValue> AggregateCache::TryAnswer(const Cube& cube,
                                                   const CellRef& ref) const {
  CacheMetrics::Get().lookups->Increment();
  // Dimensions a view must keep: anything the ref restricts (not the root),
  // plus root dimensions whose consolidation weights make the view's plain
  // dropped-dimension sum differ from the root roll-up.
  GroupByMask needed = 0;
  for (int d = 0; d < cube.num_dims(); ++d) {
    if (ref[d].instance != kInvalidInstance ||
        ref[d].member != cube.schema().dimension(d).root() ||
        !root_droppable(d)) {
      needed |= GroupByMask{1} << d;
    }
  }
  const GroupByResult* covering = SmallestCovering(needed);
  if (covering == nullptr) {
    ++misses;
    CacheMetrics::Get().misses->Increment();
    return std::nullopt;
  }
  const GroupByResult& view = *covering;

  // Sum the view over the cross product of the ref's weighted position
  // scopes along the view's kept dimensions (consolidation weights apply
  // at answer time; the views themselves are plain position sums).
  const std::vector<int>& kept = view.kept_dims();
  std::vector<std::vector<std::pair<int, double>>> positions(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    positions[i] = cube.PositionsUnderWeighted(kept[i], ref[kept[i]]);
    if (positions[i].empty()) {
      ++hits;
      CacheMetrics::Get().hits->Increment();
      return CellValue::Null();
    }
  }
  CellValue sum;
  const std::vector<int64_t>& strides = view.strides();
  const double* cells = view.raw_cells();  // Sentinel-encoded, no round-trip.
  std::vector<int> idx(kept.size(), 0);
  while (true) {
    double weight = 1.0;
    int64_t index = 0;
    for (size_t i = 0; i < kept.size(); ++i) {
      index += positions[i][idx[i]].first * strides[i];
      weight *= positions[i][idx[i]].second;
    }
    const double v = cells[index];
    if (!CellValue::IsStorageNull(v)) sum += CellValue(v * weight);
    size_t d = kept.size();
    bool done = true;
    while (d-- > 0) {
      if (++idx[d] < static_cast<int>(positions[d].size())) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (kept.empty() || done) break;
  }
  ++hits;
  CacheMetrics::Get().hits->Increment();
  return sum;
}

}  // namespace olap
