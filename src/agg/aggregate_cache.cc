#include "agg/aggregate_cache.h"

#include <numeric>

#include "common/metrics.h"

namespace olap {

namespace {

// Cache accounting contract (asserted by the stats contract suite):
// lookups == hits + misses, always.
struct CacheMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* misses;

  static const CacheMetrics& Get() {
    static CacheMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return CacheMetrics{reg.counter("agg.cache.lookups"),
                          reg.counter("agg.cache.hits"),
                          reg.counter("agg.cache.misses")};
    }();
    return m;
  }
};

}  // namespace

AggregateCache::AggregateCache(const Cube& cube,
                               const std::vector<GroupByMask>& masks)
    : masks_(masks) {
  ChunkAggregator aggregator(cube);
  std::vector<int> order(cube.num_dims());
  std::iota(order.begin(), order.end(), 0);
  views_ = aggregator.Compute(masks_, order);
}

AggregateCache AggregateCache::BuildGreedy(const Cube& cube, int max_views) {
  Lattice lattice(cube.layout());
  SelectedViews selected = SelectViewsGreedy(lattice, max_views);
  return AggregateCache(cube, selected.views);
}

int64_t AggregateCache::TotalCells() const {
  int64_t total = 0;
  for (const GroupByResult& view : views_) total += view.num_cells();
  return total;
}

std::optional<CellValue> AggregateCache::TryAnswer(const Cube& cube,
                                                   const CellRef& ref) const {
  CacheMetrics::Get().lookups->Increment();
  // Dimensions the ref actually restricts (anything except the root).
  GroupByMask needed = 0;
  for (int d = 0; d < cube.num_dims(); ++d) {
    if (ref[d].instance != kInvalidInstance ||
        ref[d].member != cube.schema().dimension(d).root()) {
      needed |= GroupByMask{1} << d;
    }
  }
  // Smallest materialized view keeping every restricted dimension.
  int best = -1;
  for (int i = 0; i < num_views(); ++i) {
    if ((needed & masks_[i]) != needed) continue;
    if (best < 0 || views_[i].num_cells() < views_[best].num_cells()) best = i;
  }
  if (best < 0) {
    ++misses;
    CacheMetrics::Get().misses->Increment();
    return std::nullopt;
  }
  const GroupByResult& view = views_[best];

  // Sum the view over the cross product of the ref's weighted position
  // scopes along the view's kept dimensions (consolidation weights apply
  // at answer time; the views themselves are plain position sums).
  const std::vector<int>& kept = view.kept_dims();
  std::vector<std::vector<std::pair<int, double>>> positions(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    positions[i] = cube.PositionsUnderWeighted(kept[i], ref[kept[i]]);
    if (positions[i].empty()) {
      ++hits;
      CacheMetrics::Get().hits->Increment();
      return CellValue::Null();
    }
  }
  CellValue sum;
  std::vector<int> idx(kept.size(), 0);
  std::vector<int> coords(kept.size());
  while (true) {
    double weight = 1.0;
    for (size_t i = 0; i < kept.size(); ++i) {
      coords[i] = positions[i][idx[i]].first;
      weight *= positions[i][idx[i]].second;
    }
    CellValue v = view.Get(coords);
    if (!v.is_null()) sum += CellValue(v.value() * weight);
    size_t d = kept.size();
    bool done = true;
    while (d-- > 0) {
      if (++idx[d] < static_cast<int>(positions[d].size())) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (kept.empty() || done) break;
  }
  ++hits;
  CacheMetrics::Get().hits->Increment();
  return sum;
}

}  // namespace olap
