#include "agg/kernels.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/value.h"

#if !defined(OLAP_DISABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define OLAP_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if !defined(OLAP_DISABLE_SIMD) && defined(__aarch64__)
#define OLAP_KERNELS_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace olap::kernels {
namespace {

using detail::LoadBits;
using detail::OrBitsAt;
using detail::SetBit;
using detail::TestBit;

inline uint64_t FullMask(int count) {
  return count >= 64 ? ~uint64_t{0} : (uint64_t{1} << count) - 1;
}

inline bool IsSentinelNull(double raw) { return CellValue::IsStorageNull(raw); }

const double kNullDouble = CellValue::NullStorage();

// ---------------------------------------------------------------------------
// Scalar reference implementations. These DEFINE the results; every other
// implementation must match them bitwise.
// ---------------------------------------------------------------------------

RunSum MaskedRunSumScalarImpl(const double* values, const uint64_t* valid,
                              int64_t bit_offset, int64_t len) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  int64_t count = 0;
  for (int64_t i = 0; i < len; ++i) {
    if (TestBit(valid, bit_offset + i)) {
      acc[i & 3] += values[i];
      ++count;
    }
  }
  return {(acc[0] + acc[1]) + (acc[2] + acc[3]), count};
}

void MergeWeightedRunIntoSentinelScalarImpl(double w, const double* src,
                                            const uint64_t* valid,
                                            int64_t bit_offset, double* dst,
                                            int64_t len) {
  for (int64_t i = 0; i < len; ++i) {
    if (!TestBit(valid, bit_offset + i)) continue;
    const double s = src[i];
    dst[i] = IsSentinelNull(dst[i]) ? w * s : std::fma(w, s, dst[i]);
  }
}

void MergeWeightedSentinelRunScalarImpl(double w, const double* src,
                                        double* dst, int64_t len) {
  for (int64_t i = 0; i < len; ++i) {
    const double s = src[i];
    if (IsSentinelNull(s)) continue;
    dst[i] = IsSentinelNull(dst[i]) ? w * s : std::fma(w, s, dst[i]);
  }
}

int64_t CopyRunMaskedScalarImpl(const double* src_values,
                                const uint64_t* src_valid,
                                int64_t src_bit_offset, double* dst_values,
                                uint64_t* dst_valid, int64_t dst_bit_offset,
                                int64_t len) {
  int64_t copied = 0;
  for (int64_t i = 0; i < len; ++i) {
    if (!TestBit(src_valid, src_bit_offset + i)) continue;
    dst_values[i] = src_values[i];
    SetBit(dst_valid, dst_bit_offset + i);
    ++copied;
  }
  return copied;
}

void ExpandToSentinelScalarImpl(const double* values, const uint64_t* valid,
                                int64_t bit_offset, double* out, int64_t len) {
  for (int64_t i = 0; i < len; ++i) {
    out[i] = TestBit(valid, bit_offset + i) ? values[i] : kNullDouble;
  }
}

int64_t DecodeSentinelRunScalarImpl(const double* raw, double* values,
                                    uint64_t* valid, int64_t bit_offset,
                                    int64_t len) {
  int64_t count = 0;
  for (int64_t i = 0; i < len; ++i) {
    const double r = raw[i];
    if (std::isnan(r)) {
      values[i] = 0.0;
    } else {
      values[i] = r;
      SetBit(valid, bit_offset + i);
      ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Portable word-blocked implementations: scalar per-element arithmetic (so
// results are trivially bit-identical to the reference), but the mask is
// read one word per 64 elements and the all-valid / all-invalid word fast
// paths run dense loops the compiler can auto-vectorize.
// ---------------------------------------------------------------------------

RunSum MaskedRunSumPortable(const double* values, const uint64_t* valid,
                            int64_t bit_offset, int64_t len) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  int64_t count = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    count += std::popcount(m);
    const double* p = values + i;
    if (m == FullMask(n)) {
      int k = 0;
      for (; k + 4 <= n; k += 4) {
        acc[0] += p[k];
        acc[1] += p[k + 1];
        acc[2] += p[k + 2];
        acc[3] += p[k + 3];
      }
      for (; k < n; ++k) acc[k & 3] += p[k];
    } else if (m != 0) {
      for (int k = 0; k < n; ++k) {
        if ((m >> k) & 1u) acc[k & 3] += p[k];
      }
    }
    i += n;
  }
  return {(acc[0] + acc[1]) + (acc[2] + acc[3]), count};
}

void MergeWeightedRunIntoSentinelPortable(double w, const double* src,
                                          const uint64_t* valid,
                                          int64_t bit_offset, double* dst,
                                          int64_t len) {
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    if (m != 0) {
      const double* s = src + i;
      double* d = dst + i;
      for (int k = 0; k < n; ++k) {
        if (!((m >> k) & 1u)) continue;
        d[k] = IsSentinelNull(d[k]) ? w * s[k] : std::fma(w, s[k], d[k]);
      }
    }
    i += n;
  }
}

int64_t CopyRunMaskedPortable(const double* src_values,
                              const uint64_t* src_valid,
                              int64_t src_bit_offset, double* dst_values,
                              uint64_t* dst_valid, int64_t dst_bit_offset,
                              int64_t len) {
  int64_t copied = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(src_valid, src_bit_offset + i, n);
    if (m != 0) {
      OrBitsAt(dst_valid, dst_bit_offset + i, m, n);
      copied += std::popcount(m);
      if (m == FullMask(n)) {
        std::memcpy(dst_values + i, src_values + i, sizeof(double) * n);
      } else {
        uint64_t bits = m;
        while (bits != 0) {
          const int k = std::countr_zero(bits);
          dst_values[i + k] = src_values[i + k];
          bits &= bits - 1;
        }
      }
    }
    i += n;
  }
  return copied;
}

void ExpandToSentinelPortable(const double* values, const uint64_t* valid,
                              int64_t bit_offset, double* out, int64_t len) {
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    if (m == FullMask(n)) {
      std::memcpy(out + i, values + i, sizeof(double) * n);
    } else if (m == 0) {
      for (int k = 0; k < n; ++k) out[i + k] = kNullDouble;
    } else {
      for (int k = 0; k < n; ++k) {
        out[i + k] = ((m >> k) & 1u) ? values[i + k] : kNullDouble;
      }
    }
    i += n;
  }
}

int64_t DecodeSentinelRunPortable(const double* raw, double* values,
                                  uint64_t* valid, int64_t bit_offset,
                                  int64_t len) {
  int64_t count = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    uint64_t m = 0;
    for (int k = 0; k < n; ++k) {
      const double r = raw[i + k];
      if (std::isnan(r)) {
        values[i + k] = 0.0;
      } else {
        values[i + k] = r;
        m |= uint64_t{1} << k;
      }
    }
    if (m != 0) {
      OrBitsAt(valid, bit_offset + i, m, n);
      count += std::popcount(m);
    }
    i += n;
  }
  return count;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations (x86). Compiled with per-function target
// attributes so the rest of the binary keeps the baseline ISA; only called
// after __builtin_cpu_supports checks.
// ---------------------------------------------------------------------------
#if defined(OLAP_KERNELS_HAVE_AVX2)

// kNibbleMaskBits[m][j]: all-ones when bit j of nibble m is set. Loaded as
// a pd mask for AND/blend of one 4-lane group.
alignas(32) constexpr uint64_t kNibbleMaskBits[16][4] = {
    {0, 0, 0, 0},    {~0ull, 0, 0, 0},
    {0, ~0ull, 0, 0},    {~0ull, ~0ull, 0, 0},
    {0, 0, ~0ull, 0},    {~0ull, 0, ~0ull, 0},
    {0, ~0ull, ~0ull, 0},    {~0ull, ~0ull, ~0ull, 0},
    {0, 0, 0, ~0ull},    {~0ull, 0, 0, ~0ull},
    {0, ~0ull, 0, ~0ull},    {~0ull, ~0ull, 0, ~0ull},
    {0, 0, ~0ull, ~0ull},    {~0ull, 0, ~0ull, ~0ull},
    {0, ~0ull, ~0ull, ~0ull},    {~0ull, ~0ull, ~0ull, ~0ull},
};

// kTailLaneBits[r][j]: all-ones when j < r — the maskload/maskstore lane
// mask for a tail group of r (1..3) elements.
alignas(32) constexpr uint64_t kTailLaneBits[4][4] = {
    {0, 0, 0, 0},
    {~0ull, 0, 0, 0},
    {~0ull, ~0ull, 0, 0},
    {~0ull, ~0ull, ~0ull, 0},
};

__attribute__((target("avx2,fma"))) inline __m256d NibbleMaskPd(unsigned nib) {
  return _mm256_load_pd(reinterpret_cast<const double*>(kNibbleMaskBits[nib]));
}

__attribute__((target("avx2,fma"))) inline __m256i TailLaneMask(int rem) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kTailLaneBits[rem]));
}

__attribute__((target("avx2,fma"))) RunSum MaskedRunSumAvx2(
    const double* values, const uint64_t* valid, int64_t bit_offset,
    int64_t len) {
  __m256d acc = _mm256_setzero_pd();
  int64_t count = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    count += std::popcount(m);
    const double* p = values + i;
    if (n == 64 && m == ~uint64_t{0}) {
      for (int k = 0; k < 64; k += 4) {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(p + k));
      }
    } else if (m != 0) {
      int k = 0;
      for (; k + 4 <= n; k += 4) {
        const unsigned nib = static_cast<unsigned>((m >> k) & 0xF);
        if (nib == 0) continue;
        const __m256d x =
            _mm256_and_pd(_mm256_loadu_pd(p + k), NibbleMaskPd(nib));
        acc = _mm256_add_pd(acc, x);
      }
      if (k < n) {
        const int rem = n - k;
        const unsigned nib = static_cast<unsigned>(m >> k);
        if (nib != 0) {
          __m256d x = _mm256_maskload_pd(p + k, TailLaneMask(rem));
          x = _mm256_and_pd(x, NibbleMaskPd(nib));
          acc = _mm256_add_pd(acc, x);
        }
      }
    }
    i += n;
  }
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  return {(a[0] + a[1]) + (a[2] + a[3]), count};
}

__attribute__((target("avx2,fma"))) void MergeWeightedRunIntoSentinelAvx2(
    double w, const double* src, const uint64_t* valid, int64_t bit_offset,
    double* dst, int64_t len) {
  const __m256d wv = _mm256_set1_pd(w);
  const __m256i null_bits =
      _mm256_set1_epi64x(static_cast<long long>(CellValue::NullStorageBits()));
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    if (m != 0) {
      const double* s = src + i;
      double* d = dst + i;
      int k = 0;
      for (; k + 4 <= n; k += 4) {
        const unsigned nib = static_cast<unsigned>((m >> k) & 0xF);
        if (nib == 0) continue;
        const __m256d dv = _mm256_loadu_pd(d + k);
        const __m256d sv = _mm256_loadu_pd(s + k);
        const __m256d dnull = _mm256_castsi256_pd(
            _mm256_cmpeq_epi64(_mm256_castpd_si256(dv), null_bits));
        const __m256d prod = _mm256_mul_pd(wv, sv);
        const __m256d fused = _mm256_fmadd_pd(wv, sv, dv);
        const __m256d merged = _mm256_blendv_pd(fused, prod, dnull);
        const __m256d res = _mm256_blendv_pd(dv, merged, NibbleMaskPd(nib));
        _mm256_storeu_pd(d + k, res);
      }
      for (; k < n; ++k) {
        if (!((m >> k) & 1u)) continue;
        d[k] = IsSentinelNull(d[k]) ? w * s[k] : std::fma(w, s[k], d[k]);
      }
    }
    i += n;
  }
}

__attribute__((target("avx2,fma"))) void MergeWeightedSentinelRunAvx2(
    double w, const double* src, double* dst, int64_t len) {
  const __m256d wv = _mm256_set1_pd(w);
  const __m256i null_bits =
      _mm256_set1_epi64x(static_cast<long long>(CellValue::NullStorageBits()));
  int64_t k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m256d sv = _mm256_loadu_pd(src + k);
    const __m256i snull_i =
        _mm256_cmpeq_epi64(_mm256_castpd_si256(sv), null_bits);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(snull_i)) == 0xF) continue;
    const __m256d snull = _mm256_castsi256_pd(snull_i);
    const __m256d dv = _mm256_loadu_pd(dst + k);
    const __m256d dnull = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_castpd_si256(dv), null_bits));
    const __m256d prod = _mm256_mul_pd(wv, sv);
    const __m256d fused = _mm256_fmadd_pd(wv, sv, dv);
    const __m256d merged = _mm256_blendv_pd(fused, prod, dnull);
    const __m256d res = _mm256_blendv_pd(merged, dv, snull);
    _mm256_storeu_pd(dst + k, res);
  }
  for (; k < len; ++k) {
    const double s = src[k];
    if (IsSentinelNull(s)) continue;
    dst[k] = IsSentinelNull(dst[k]) ? w * s : std::fma(w, s, dst[k]);
  }
}

__attribute__((target("avx2,fma"))) int64_t CopyRunMaskedAvx2(
    const double* src_values, const uint64_t* src_valid,
    int64_t src_bit_offset, double* dst_values, uint64_t* dst_valid,
    int64_t dst_bit_offset, int64_t len) {
  int64_t copied = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(src_valid, src_bit_offset + i, n);
    if (m != 0) {
      OrBitsAt(dst_valid, dst_bit_offset + i, m, n);
      const int pop = std::popcount(m);
      copied += pop;
      if (m == FullMask(n)) {
        std::memcpy(dst_values + i, src_values + i, sizeof(double) * n);
      } else if (pop <= 16) {
        uint64_t bits = m;
        while (bits != 0) {
          const int k = std::countr_zero(bits);
          dst_values[i + k] = src_values[i + k];
          bits &= bits - 1;
        }
      } else {
        const double* s = src_values + i;
        double* d = dst_values + i;
        int k = 0;
        for (; k + 4 <= n; k += 4) {
          const unsigned nib = static_cast<unsigned>((m >> k) & 0xF);
          if (nib == 0) continue;
          const __m256d sv = _mm256_loadu_pd(s + k);
          const __m256d dv = _mm256_loadu_pd(d + k);
          _mm256_storeu_pd(d + k,
                           _mm256_blendv_pd(dv, sv, NibbleMaskPd(nib)));
        }
        for (; k < n; ++k) {
          if ((m >> k) & 1u) d[k] = s[k];
        }
      }
    }
    i += n;
  }
  return copied;
}

__attribute__((target("avx2,fma"))) void ExpandToSentinelAvx2(
    const double* values, const uint64_t* valid, int64_t bit_offset,
    double* out, int64_t len) {
  const __m256d nullv = _mm256_set1_pd(kNullDouble);
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    if (m == FullMask(n)) {
      std::memcpy(out + i, values + i, sizeof(double) * n);
    } else {
      const double* p = values + i;
      double* o = out + i;
      int k = 0;
      for (; k + 4 <= n; k += 4) {
        const unsigned nib = static_cast<unsigned>((m >> k) & 0xF);
        const __m256d v = _mm256_loadu_pd(p + k);
        _mm256_storeu_pd(o + k, _mm256_blendv_pd(nullv, v, NibbleMaskPd(nib)));
      }
      for (; k < n; ++k) {
        o[k] = ((m >> k) & 1u) ? p[k] : kNullDouble;
      }
    }
    i += n;
  }
}

__attribute__((target("avx2,fma"))) int64_t DecodeSentinelRunAvx2(
    const double* raw, double* values, uint64_t* valid, int64_t bit_offset,
    int64_t len) {
  int64_t count = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const double* r = raw + i;
    double* v = values + i;
    uint64_t m = 0;
    int k = 0;
    for (; k + 4 <= n; k += 4) {
      const __m256d x = _mm256_loadu_pd(r + k);
      const __m256d ord = _mm256_cmp_pd(x, x, _CMP_ORD_Q);
      _mm256_storeu_pd(v + k, _mm256_and_pd(x, ord));
      m |= static_cast<uint64_t>(_mm256_movemask_pd(ord)) << k;
    }
    for (; k < n; ++k) {
      const double x = r[k];
      if (std::isnan(x)) {
        v[k] = 0.0;
      } else {
        v[k] = x;
        m |= uint64_t{1} << k;
      }
    }
    if (m != 0) {
      OrBitsAt(valid, bit_offset + i, m, n);
      count += std::popcount(m);
    }
    i += n;
  }
  return count;
}

#endif  // OLAP_KERNELS_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON implementations (aarch64). NEON is baseline on aarch64, so no
// runtime feature check is needed. The memory-movement kernels (copy,
// expand, decode) reuse the portable word-blocked paths — they are
// memcpy-dominated — while the arithmetic kernels get explicit 2-lane
// pairs that reproduce the fixed 4-lane shape.
// ---------------------------------------------------------------------------
#if defined(OLAP_KERNELS_HAVE_NEON)

inline float64x2_t NeonPairMask(uint64_t b0, uint64_t b1) {
  return vreinterpretq_f64_u64(
      vcombine_u64(vcreate_u64(b0 ? ~0ull : 0), vcreate_u64(b1 ? ~0ull : 0)));
}

RunSum MaskedRunSumNeon(const double* values, const uint64_t* valid,
                        int64_t bit_offset, int64_t len) {
  float64x2_t acc01 = vdupq_n_f64(0.0);  // lanes i%4 == 0, 1
  float64x2_t acc23 = vdupq_n_f64(0.0);  // lanes i%4 == 2, 3
  int64_t count = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    count += std::popcount(m);
    const double* p = values + i;
    if (n == 64 && m == ~uint64_t{0}) {
      for (int k = 0; k < 64; k += 4) {
        acc01 = vaddq_f64(acc01, vld1q_f64(p + k));
        acc23 = vaddq_f64(acc23, vld1q_f64(p + k + 2));
      }
    } else if (m != 0) {
      int k = 0;
      for (; k + 4 <= n; k += 4) {
        const unsigned nib = static_cast<unsigned>((m >> k) & 0xF);
        if (nib == 0) continue;
        const float64x2_t x01 = vreinterpretq_f64_u64(vandq_u64(
            vreinterpretq_u64_f64(vld1q_f64(p + k)),
            vreinterpretq_u64_f64(NeonPairMask(nib & 1, nib & 2))));
        const float64x2_t x23 = vreinterpretq_f64_u64(vandq_u64(
            vreinterpretq_u64_f64(vld1q_f64(p + k + 2)),
            vreinterpretq_u64_f64(NeonPairMask(nib & 4, nib & 8))));
        acc01 = vaddq_f64(acc01, x01);
        acc23 = vaddq_f64(acc23, x23);
      }
      for (; k < n; ++k) {
        if (!((m >> k) & 1u)) continue;
        const double x = p[k];
        switch (k & 3) {
          case 0:
            acc01 = vsetq_lane_f64(vgetq_lane_f64(acc01, 0) + x, acc01, 0);
            break;
          case 1:
            acc01 = vsetq_lane_f64(vgetq_lane_f64(acc01, 1) + x, acc01, 1);
            break;
          case 2:
            acc23 = vsetq_lane_f64(vgetq_lane_f64(acc23, 0) + x, acc23, 0);
            break;
          default:
            acc23 = vsetq_lane_f64(vgetq_lane_f64(acc23, 1) + x, acc23, 1);
            break;
        }
      }
    }
    i += n;
  }
  const double a0 = vgetq_lane_f64(acc01, 0);
  const double a1 = vgetq_lane_f64(acc01, 1);
  const double a2 = vgetq_lane_f64(acc23, 0);
  const double a3 = vgetq_lane_f64(acc23, 1);
  return {(a0 + a1) + (a2 + a3), count};
}

void MergeWeightedRunIntoSentinelNeon(double w, const double* src,
                                      const uint64_t* valid,
                                      int64_t bit_offset, double* dst,
                                      int64_t len) {
  const float64x2_t wv = vdupq_n_f64(w);
  const uint64x2_t null_bits = vdupq_n_u64(CellValue::NullStorageBits());
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    const uint64_t m = LoadBits(valid, bit_offset + i, n);
    if (m != 0) {
      const double* s = src + i;
      double* d = dst + i;
      int k = 0;
      for (; k + 2 <= n; k += 2) {
        const unsigned pair = static_cast<unsigned>((m >> k) & 0x3);
        if (pair == 0) continue;
        const float64x2_t dv = vld1q_f64(d + k);
        const float64x2_t sv = vld1q_f64(s + k);
        const uint64x2_t dnull =
            vceqq_u64(vreinterpretq_u64_f64(dv), null_bits);
        const float64x2_t prod = vmulq_f64(wv, sv);
        const float64x2_t fused = vfmaq_f64(dv, wv, sv);
        const float64x2_t merged = vbslq_f64(dnull, prod, fused);
        const uint64x2_t sel =
            vreinterpretq_u64_f64(NeonPairMask(pair & 1, pair & 2));
        vst1q_f64(d + k, vbslq_f64(sel, merged, dv));
      }
      for (; k < n; ++k) {
        if (!((m >> k) & 1u)) continue;
        d[k] = IsSentinelNull(d[k]) ? w * s[k] : std::fma(w, s[k], d[k]);
      }
    }
    i += n;
  }
}

void MergeWeightedSentinelRunNeon(double w, const double* src, double* dst,
                                  int64_t len) {
  const float64x2_t wv = vdupq_n_f64(w);
  const uint64x2_t null_bits = vdupq_n_u64(CellValue::NullStorageBits());
  int64_t k = 0;
  for (; k + 2 <= len; k += 2) {
    const float64x2_t sv = vld1q_f64(src + k);
    const uint64x2_t snull = vceqq_u64(vreinterpretq_u64_f64(sv), null_bits);
    if (vgetq_lane_u64(snull, 0) && vgetq_lane_u64(snull, 1)) continue;
    const float64x2_t dv = vld1q_f64(dst + k);
    const uint64x2_t dnull = vceqq_u64(vreinterpretq_u64_f64(dv), null_bits);
    const float64x2_t prod = vmulq_f64(wv, sv);
    const float64x2_t fused = vfmaq_f64(dv, wv, sv);
    const float64x2_t merged = vbslq_f64(dnull, prod, fused);
    vst1q_f64(dst + k, vbslq_f64(snull, dv, merged));
  }
  for (; k < len; ++k) {
    const double s = src[k];
    if (IsSentinelNull(s)) continue;
    dst[k] = IsSentinelNull(dst[k]) ? w * s : std::fma(w, s, dst[k]);
  }
}

#endif  // OLAP_KERNELS_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

struct KernelTable {
  Isa isa;
  RunSum (*masked_run_sum)(const double*, const uint64_t*, int64_t, int64_t);
  void (*merge_weighted_run_into_sentinel)(double, const double*,
                                           const uint64_t*, int64_t, double*,
                                           int64_t);
  void (*merge_weighted_sentinel_run)(double, const double*, double*, int64_t);
  int64_t (*copy_run_masked)(const double*, const uint64_t*, int64_t, double*,
                             uint64_t*, int64_t, int64_t);
  void (*expand_to_sentinel)(const double*, const uint64_t*, int64_t, double*,
                             int64_t);
  int64_t (*decode_sentinel_run)(const double*, double*, uint64_t*, int64_t,
                                 int64_t);
};

constexpr KernelTable kScalarTable = {
    Isa::kScalar,
    MaskedRunSumScalarImpl,
    MergeWeightedRunIntoSentinelScalarImpl,
    MergeWeightedSentinelRunScalarImpl,
    CopyRunMaskedScalarImpl,
    ExpandToSentinelScalarImpl,
    DecodeSentinelRunScalarImpl,
};

constexpr KernelTable kPortableTable = {
    Isa::kPortable,
    MaskedRunSumPortable,
    MergeWeightedRunIntoSentinelPortable,
    MergeWeightedSentinelRunScalarImpl,
    CopyRunMaskedPortable,
    ExpandToSentinelPortable,
    DecodeSentinelRunPortable,
};

#if defined(OLAP_KERNELS_HAVE_AVX2)
constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,
    MaskedRunSumAvx2,
    MergeWeightedRunIntoSentinelAvx2,
    MergeWeightedSentinelRunAvx2,
    CopyRunMaskedAvx2,
    ExpandToSentinelAvx2,
    DecodeSentinelRunAvx2,
};
#endif

#if defined(OLAP_KERNELS_HAVE_NEON)
constexpr KernelTable kNeonTable = {
    Isa::kNeon,
    MaskedRunSumNeon,
    MergeWeightedRunIntoSentinelNeon,
    MergeWeightedSentinelRunNeon,
    CopyRunMaskedPortable,
    ExpandToSentinelPortable,
    DecodeSentinelRunPortable,
};
#endif

const KernelTable* ResolveTable() {
  if (const char* force = std::getenv("OLAP_FORCE_SCALAR_KERNELS");
      force != nullptr && force[0] != '\0' && force[0] != '0') {
    return &kScalarTable;
  }
#if defined(OLAP_KERNELS_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Table;
  }
#endif
#if defined(OLAP_KERNELS_HAVE_NEON)
  return &kNeonTable;
#endif
  return &kPortableTable;
}

std::atomic<const KernelTable*> g_table{nullptr};

inline const KernelTable& Active() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = ResolveTable();
    g_table.store(t, std::memory_order_release);
  }
  return *t;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kPortable:
      return "portable";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa ActiveIsa() { return Active().isa; }

bool SimdCompiledIn() {
#if defined(OLAP_KERNELS_HAVE_AVX2) || defined(OLAP_KERNELS_HAVE_NEON)
  return true;
#else
  return false;
#endif
}

void ForceScalar(bool on) {
  g_table.store(on ? &kScalarTable : ResolveTable(),
                std::memory_order_release);
}

RunSum MaskedRunSum(const double* values, const uint64_t* valid,
                    int64_t bit_offset, int64_t len) {
  return Active().masked_run_sum(values, valid, bit_offset, len);
}

RunSum MaskedRunSumScalar(const double* values, const uint64_t* valid,
                          int64_t bit_offset, int64_t len) {
  return MaskedRunSumScalarImpl(values, valid, bit_offset, len);
}

void MergeWeightedRunIntoSentinel(double w, const double* src_values,
                                  const uint64_t* src_valid,
                                  int64_t src_bit_offset, double* dst,
                                  int64_t len) {
  Active().merge_weighted_run_into_sentinel(w, src_values, src_valid,
                                            src_bit_offset, dst, len);
}

void MergeWeightedRunIntoSentinelScalar(double w, const double* src_values,
                                        const uint64_t* src_valid,
                                        int64_t src_bit_offset, double* dst,
                                        int64_t len) {
  MergeWeightedRunIntoSentinelScalarImpl(w, src_values, src_valid,
                                         src_bit_offset, dst, len);
}

void MergeWeightedSentinelRun(double w, const double* src, double* dst,
                              int64_t len) {
  Active().merge_weighted_sentinel_run(w, src, dst, len);
}

void MergeWeightedSentinelRunScalar(double w, const double* src, double* dst,
                                    int64_t len) {
  MergeWeightedSentinelRunScalarImpl(w, src, dst, len);
}

int64_t CopyRunMasked(const double* src_values, const uint64_t* src_valid,
                      int64_t src_bit_offset, double* dst_values,
                      uint64_t* dst_valid, int64_t dst_bit_offset,
                      int64_t len) {
  return Active().copy_run_masked(src_values, src_valid, src_bit_offset,
                                  dst_values, dst_valid, dst_bit_offset, len);
}

int64_t CopyRunMaskedScalar(const double* src_values,
                            const uint64_t* src_valid, int64_t src_bit_offset,
                            double* dst_values, uint64_t* dst_valid,
                            int64_t dst_bit_offset, int64_t len) {
  return CopyRunMaskedScalarImpl(src_values, src_valid, src_bit_offset,
                                 dst_values, dst_valid, dst_bit_offset, len);
}

void ExpandToSentinel(const double* values, const uint64_t* valid,
                      int64_t bit_offset, double* out, int64_t len) {
  Active().expand_to_sentinel(values, valid, bit_offset, out, len);
}

void ExpandToSentinelScalar(const double* values, const uint64_t* valid,
                            int64_t bit_offset, double* out, int64_t len) {
  ExpandToSentinelScalarImpl(values, valid, bit_offset, out, len);
}

int64_t DecodeSentinelRun(const double* raw, double* values, uint64_t* valid,
                          int64_t bit_offset, int64_t len) {
  return Active().decode_sentinel_run(raw, values, valid, bit_offset, len);
}

int64_t DecodeSentinelRunScalar(const double* raw, double* values,
                                uint64_t* valid, int64_t bit_offset,
                                int64_t len) {
  return DecodeSentinelRunScalarImpl(raw, values, valid, bit_offset, len);
}

int64_t PopcountRange(const uint64_t* words, int64_t bit_offset, int64_t len) {
  int64_t count = 0;
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    count += std::popcount(LoadBits(words, bit_offset + i, n));
    i += n;
  }
  return count;
}

bool AnyBitInRange(const uint64_t* words, int64_t bit_offset, int64_t len) {
  int64_t i = 0;
  while (i < len) {
    const int n = len - i < 64 ? static_cast<int>(len - i) : 64;
    if (LoadBits(words, bit_offset + i, n) != 0) return true;
    i += n;
  }
  return false;
}

}  // namespace olap::kernels
