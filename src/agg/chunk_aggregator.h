#ifndef OLAP_AGG_CHUNK_AGGREGATOR_H_
#define OLAP_AGG_CHUNK_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "agg/group_by.h"
#include "agg/lattice.h"
#include "common/cancellation.h"
#include "cube/cube.h"
#include "storage/chunk_pipeline.h"
#include "storage/simulated_disk.h"

namespace olap {

// Statistics from one aggregation pass.
struct AggStats {
  int64_t chunks_visited = 0;   // Chunk-grid cells traversed.
  int64_t chunks_read = 0;      // Chunks that actually held data.
  int64_t cells_scanned = 0;    // Non-⊥ input cells.
  int64_t mmst_memory_cells = 0;  // Analytic Zhao memory bound for the pass.
};

// Simple whole-cube scanner: visits every stored cell once and projects it
// onto each requested group-by. The oracle against which ChunkAggregator is
// tested.
class NaiveAggregator {
 public:
  // Computes the requested group-bys of `cube` (sum over dropped dims).
  static std::vector<GroupByResult> Compute(const Cube& cube,
                                            const std::vector<GroupByMask>& masks);
};

// Zhao-style aggregator: reads chunks in an explicit dimension order
// (order[0] varies fastest) and accumulates every requested group-by in one
// pass. Optionally charges each chunk read to a SimulatedDisk.
//
// The numeric results are identical to NaiveAggregator (tested); what the
// dimension order changes is the I/O pattern and the analytic memory bound
// (AggStats::mmst_memory_cells) — which is what the paper's Lemma 5.1
// argument and the Zhao MMST are about.
class ChunkAggregator {
 public:
  explicit ChunkAggregator(const Cube& cube) : cube_(cube) {}

  // `order`: permutation of dimensions; order[0] is read fastest.
  // `disk` may be null.
  //
  // The stored chunks (in traversal order) are split into a deterministic
  // sequence of contiguous partitions whose count depends only on the
  // workload (never on `threads`); each partition accumulates every
  // requested group-by in one pass over its chunks, and the per-partition
  // partials are merged in ascending partition order. `threads` > 1 runs
  // the partitions in parallel on the shared pool; because the partition
  // plan and the merge order are thread-independent, the results are
  // bit-identical at every thread count. Stats and disk charging come from
  // a serial traversal pre-pass and are likewise unchanged.
  //
  // `cancel` is polled at chunk/partition granularity. A pass that
  // observes a stop request returns early with *incomplete* partials — the
  // caller owns checking the token afterwards and must discard the result
  // (never publish it into a cache).
  std::vector<GroupByResult> Compute(const std::vector<GroupByMask>& masks,
                                     const std::vector<int>& order,
                                     SimulatedDisk* disk = nullptr,
                                     int threads = 1,
                                     const CancellationToken& cancel = {});

  // Out-of-core variant: reads the chunk data from `disk`'s backing file
  // (which must store this aggregator's cube) instead of the in-memory
  // chunk map. The traversal order, the workload-only partition plan, and
  // the ascending partial merge are the same as Compute's, and chunks are
  // accumulated strictly in traversal order — so the two streaming modes
  // below are bit-identical to each other at every io_threads setting:
  //   * pipelined=false: synchronous FetchChunk per visited chunk (the
  //     oracle — compute stalls on every virtual+real read);
  //   * pipelined=true:  chunks stream through a ChunkPipeline (prefetch,
  //     coalesced ranged reads, bounded pin table), one pin held at a time.
  // kFailedPrecondition without a backing file; read errors propagate —
  // except kResourceExhausted from the pipelined mode, which walks a
  // degradation ladder first: the stream is retried with the lookahead
  // window halved (repeatedly, down to 1), then falls back to the
  // synchronous per-chunk loop, and only a still-failing sync pass
  // surfaces the error. Each retry restarts accumulation from scratch, so
  // the delivered numbers are exactly the successful pass's (bit-identical
  // to an undegraded run). Rungs taken are reported through `on_degrade`
  // and the agg.outofcore.* counters.
  struct OutOfCoreOptions {
    bool pipelined = false;
    ChunkPipelineOptions pipeline;
    // Polled per streamed chunk; also threaded into the pipeline. On a
    // stop request ComputeOutOfCore returns kCancelled/kDeadlineExceeded
    // (cancellation is terminal: the ladder does not retry it).
    CancellationToken cancel;
    // Ladder-step callback ("lookahead_halved", "sync_io"); the engine
    // wires this to QueryContext::RecordDegradation. May be empty.
    std::function<void(const char*)> on_degrade;
  };
  Result<std::vector<GroupByResult>> ComputeOutOfCore(
      const std::vector<GroupByMask>& masks, const std::vector<int>& order,
      SimulatedDisk* disk, const OutOfCoreOptions& options);

  const AggStats& stats() const { return stats_; }

 private:
  const Cube& cube_;
  AggStats stats_;
};

// Accumulates every non-⊥ cell of `chunk` (chunk id `id` of `layout`) into
// each group-by of `out` in row-major offset order, maintaining one
// incrementally-updated output index per group-by (no per-cell coordinate
// vectors). Padded cells beyond the layout extents are always ⊥, so the
// null check alone keeps them out. Shared by ChunkAggregator and the
// batched derived-cell evaluator.
void AccumulateChunkIntoGroupBys(const ChunkLayout& layout, ChunkId id,
                                 const Chunk& chunk,
                                 std::vector<GroupByResult>* out);

// Single-view weighted variant for delta maintenance: accumulates
// `weight` * every non-⊥ cell of `chunk` into `view` (⊥-aware; a ⊥ output
// cell becomes the weighted value), through the same row-tiled kernel
// dispatch as AccumulateChunkIntoGroupBys. With w = -1 this is exact
// subtraction on integer-valued data (fma(-1, x, s) = s - x), which is how
// AggregateCache patches resident views after a chunk swap: subtract the
// old chunk, add the new one.
//
// `counts` (nullable): per-view-cell contribution counters, bumped by
// sign(weight) per non-⊥ input cell — the bookkeeping that lets the caller
// restore ⊥ when a cell's last contribution disappears. Pass
// update_values=false to maintain only the counters (the sidecar build
// pass of AggregateCache::EnableIncrementalMaintenance).
void AccumulateChunkIntoGroupByWeighted(const ChunkLayout& layout, ChunkId id,
                                        const Chunk& chunk, double weight,
                                        GroupByResult* view, int32_t* counts,
                                        bool update_values = true);

// Helper shared with the engine: makes one GroupByResult shell for `mask`
// over `cube`'s position extents.
GroupByResult MakeGroupByShell(const Cube& cube, GroupByMask mask);

}  // namespace olap

#endif  // OLAP_AGG_CHUNK_AGGREGATOR_H_
