#ifndef OLAP_AGG_CHUNK_AGGREGATOR_H_
#define OLAP_AGG_CHUNK_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "agg/group_by.h"
#include "agg/lattice.h"
#include "cube/cube.h"
#include "storage/simulated_disk.h"

namespace olap {

// Statistics from one aggregation pass.
struct AggStats {
  int64_t chunks_visited = 0;   // Chunk-grid cells traversed.
  int64_t chunks_read = 0;      // Chunks that actually held data.
  int64_t cells_scanned = 0;    // Non-⊥ input cells.
  int64_t mmst_memory_cells = 0;  // Analytic Zhao memory bound for the pass.
};

// Simple whole-cube scanner: visits every stored cell once and projects it
// onto each requested group-by. The oracle against which ChunkAggregator is
// tested.
class NaiveAggregator {
 public:
  // Computes the requested group-bys of `cube` (sum over dropped dims).
  static std::vector<GroupByResult> Compute(const Cube& cube,
                                            const std::vector<GroupByMask>& masks);
};

// Zhao-style aggregator: reads chunks in an explicit dimension order
// (order[0] varies fastest) and accumulates every requested group-by in one
// pass. Optionally charges each chunk read to a SimulatedDisk.
//
// The numeric results are identical to NaiveAggregator (tested); what the
// dimension order changes is the I/O pattern and the analytic memory bound
// (AggStats::mmst_memory_cells) — which is what the paper's Lemma 5.1
// argument and the Zhao MMST are about.
class ChunkAggregator {
 public:
  explicit ChunkAggregator(const Cube& cube) : cube_(cube) {}

  // `order`: permutation of dimensions; order[0] is read fastest.
  // `disk` may be null.
  //
  // `threads` > 1 computes the group-bys in parallel on the shared pool,
  // one task per mask. Each mask still accumulates its cells in the exact
  // serial visit order (the chunk traversal order), so the results are
  // bit-identical to the serial pass; stats and disk charging come from a
  // serial traversal pre-pass and are likewise unchanged.
  std::vector<GroupByResult> Compute(const std::vector<GroupByMask>& masks,
                                     const std::vector<int>& order,
                                     SimulatedDisk* disk = nullptr,
                                     int threads = 1);

  const AggStats& stats() const { return stats_; }

 private:
  const Cube& cube_;
  AggStats stats_;
};

// Helper shared with the engine: makes one GroupByResult shell for `mask`
// over `cube`'s position extents.
GroupByResult MakeGroupByShell(const Cube& cube, GroupByMask mask);

}  // namespace olap

#endif  // OLAP_AGG_CHUNK_AGGREGATOR_H_
