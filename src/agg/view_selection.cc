#include "agg/view_selection.h"

#include <algorithm>

namespace olap {

namespace {

bool IsSubset(GroupByMask w, GroupByMask v) { return (w & v) == w; }

// Current per-group-by answer costs under a materialized set.
std::vector<int64_t> Costs(const Lattice& lattice,
                           const std::vector<GroupByMask>& materialized) {
  const GroupByMask full = lattice.full_mask();
  std::vector<int64_t> cost(full + 1);
  for (GroupByMask w = 0; w <= full; ++w) {
    int64_t best = lattice.OutputCells(full);  // Raw cube fallback.
    for (GroupByMask v : materialized) {
      if (IsSubset(w, v)) best = std::min(best, lattice.OutputCells(v));
    }
    cost[w] = best;
  }
  return cost;
}

}  // namespace

int64_t AnswerCost(const Lattice& lattice, GroupByMask mask,
                   const std::vector<GroupByMask>& materialized) {
  int64_t best = lattice.OutputCells(lattice.full_mask());
  for (GroupByMask v : materialized) {
    if (IsSubset(mask, v)) best = std::min(best, lattice.OutputCells(v));
  }
  return best;
}

int64_t TotalAnswerCost(const Lattice& lattice,
                        const std::vector<GroupByMask>& materialized) {
  int64_t total = 0;
  std::vector<int64_t> cost = Costs(lattice, materialized);
  for (int64_t c : cost) total += c;
  return total;
}

SelectedViews SelectViewsGreedy(const Lattice& lattice, int k) {
  SelectedViews out;
  const GroupByMask full = lattice.full_mask();
  std::vector<int64_t> cost = Costs(lattice, {});
  for (int64_t c : cost) out.initial_cost += c;
  out.final_cost = out.initial_cost;

  std::vector<bool> chosen(full + 1, false);
  chosen[full] = true;  // The raw cube is always materialized.

  for (int pick = 0; pick < k; ++pick) {
    GroupByMask best_view = full;
    int64_t best_benefit = 0;
    for (GroupByMask v = 0; v < full; ++v) {
      if (chosen[v]) continue;
      const int64_t v_cells = lattice.OutputCells(v);
      int64_t benefit = 0;
      for (GroupByMask w = 0; w <= v; ++w) {
        if (!IsSubset(w, v)) continue;
        benefit += std::max<int64_t>(0, cost[w] - v_cells);
      }
      if (benefit > best_benefit ||
          (benefit == best_benefit && benefit > 0 && v < best_view)) {
        best_benefit = benefit;
        best_view = v;
      }
    }
    if (best_benefit <= 0) break;  // Nothing left worth materializing.
    chosen[best_view] = true;
    out.views.push_back(best_view);
    out.benefits.push_back(best_benefit);
    out.final_cost -= best_benefit;
    const int64_t v_cells = lattice.OutputCells(best_view);
    for (GroupByMask w = 0; w <= best_view; ++w) {
      if (IsSubset(w, best_view)) cost[w] = std::min(cost[w], v_cells);
    }
  }
  return out;
}

}  // namespace olap
