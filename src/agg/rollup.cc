#include "agg/rollup.h"

namespace olap {

CellValue SumOverScope(const Cube& data,
                       const std::vector<std::vector<int>>& positions) {
  const int n = static_cast<int>(positions.size());
  for (const std::vector<int>& p : positions) {
    if (p.empty()) return CellValue::Null();
  }
  std::vector<int> idx(n, 0);
  std::vector<int> coords(n);
  CellValue sum;  // ⊥ until a non-⊥ input arrives.
  while (true) {
    for (int d = 0; d < n; ++d) coords[d] = positions[d][idx[d]];
    sum += data.GetCell(coords);
    int d = n - 1;
    while (d >= 0) {
      if (++idx[d] < static_cast<int>(positions[d].size())) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return sum;
}

CellValue SumOverScopeWeighted(
    const Cube& data,
    const std::vector<std::vector<std::pair<int, double>>>& positions) {
  const int n = static_cast<int>(positions.size());
  for (const auto& p : positions) {
    if (p.empty()) return CellValue::Null();
  }
  std::vector<int> idx(n, 0);
  std::vector<int> coords(n);
  CellValue sum;  // ⊥ until a non-⊥ input arrives.
  while (true) {
    double weight = 1.0;
    for (int d = 0; d < n; ++d) {
      coords[d] = positions[d][idx[d]].first;
      weight *= positions[d][idx[d]].second;
    }
    CellValue v = data.GetCell(coords);
    if (!v.is_null()) sum += CellValue(v.value() * weight);
    int d = n - 1;
    while (d >= 0) {
      if (++idx[d] < static_cast<int>(positions[d].size())) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return sum;
}

CellValue EvaluateCell(const Cube& data, const CellRef& ref) {
  std::vector<int> leaf_coords;
  if (data.IsLeafRef(ref, &leaf_coords)) return data.GetCell(leaf_coords);
  std::vector<std::vector<std::pair<int, double>>> positions(data.num_dims());
  for (int d = 0; d < data.num_dims(); ++d) {
    positions[d] = data.PositionsUnderWeighted(d, ref[d]);
  }
  return SumOverScopeWeighted(data, positions);
}

}  // namespace olap
