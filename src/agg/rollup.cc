#include "agg/rollup.h"

#include "cube/chunk.h"
#include "cube/chunk_layout.h"

namespace olap {

namespace {

// Visits every cell of the cross product described by `scope_sizes` (an
// odometer over the outer dimensions with the LAST dimension innermost,
// matching the naive nested loop). The inner loop resolves the chunk
// pointer once per run of innermost positions falling inside the same
// chunk instead of once per cell: for a fixed outer tuple, the chunk id
// and in-chunk offset decompose into an outer prefix (folded once) plus
// the innermost dimension's contribution. Cells are visited in exactly
// the naive order, so callers' floating-point summation order — and thus
// the result — is unchanged.
//
// pos(d, i) returns the axis position of scope entry i along dimension d;
// on_outer(idx) fires once per outer tuple (before its inner run);
// on_cell(i, chunk, off) receives the innermost scope index plus the chunk
// pointer (nullptr for a missing chunk — the cell is ⊥) and the in-chunk
// offset, so callers read through Chunk::IsNull/ValueAt with no per-cell
// CellValue round-trip.
template <typename GetPos, typename OnOuter, typename OnCell>
void ForEachScopeCellChunked(const Cube& data,
                             const std::vector<int>& scope_sizes,
                             const GetPos& pos, const OnOuter& on_outer,
                             const OnCell& on_cell) {
  const int n = static_cast<int>(scope_sizes.size());
  const ChunkLayout& layout = data.layout();
  const std::vector<int>& csize = layout.chunk_sizes();
  const std::vector<int>& cpd = layout.chunks_per_dim();
  const int last = n - 1;
  std::vector<int> idx(n, 0);
  while (true) {
    int64_t id_outer = 0;
    int64_t off_outer = 0;
    for (int d = 0; d < last; ++d) {
      const int p = pos(d, idx[d]);
      id_outer = id_outer * cpd[d] + p / csize[d];
      off_outer = off_outer * csize[d] + p % csize[d];
    }
    on_outer(idx);
    const Chunk* chunk = nullptr;
    int64_t chunk_along_last = -1;
    for (int i = 0; i < scope_sizes[last]; ++i) {
      const int p = pos(last, i);
      const int64_t c = p / csize[last];
      if (c != chunk_along_last) {
        chunk_along_last = c;
        chunk = data.FindChunk(id_outer * cpd[last] + c);
      }
      on_cell(i, chunk, off_outer * csize[last] + p % csize[last]);
    }
    int d = last - 1;
    while (d >= 0) {
      if (++idx[d] < scope_sizes[d]) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
}

}  // namespace

CellValue SumOverScope(const Cube& data,
                       const std::vector<std::vector<int>>& positions) {
  const int n = static_cast<int>(positions.size());
  for (const std::vector<int>& p : positions) {
    if (p.empty()) return CellValue::Null();
  }
  if (n == 0) return data.GetCell({});
  std::vector<int> sizes(n);
  for (int d = 0; d < n; ++d) sizes[d] = static_cast<int>(positions[d].size());
  CellValue sum;  // ⊥ until a non-⊥ input arrives.
  ForEachScopeCellChunked(
      data, sizes, [&](int d, int i) { return positions[d][i]; },
      [](const std::vector<int>&) {},
      [&](int, const Chunk* chunk, int64_t off) {
        if (chunk != nullptr && !chunk->IsNull(off)) {
          sum += CellValue(chunk->ValueAt(off));
        }
      });
  return sum;
}

CellValue SumOverScopeWeighted(
    const Cube& data,
    const std::vector<std::vector<std::pair<int, double>>>& positions) {
  const int n = static_cast<int>(positions.size());
  for (const auto& p : positions) {
    if (p.empty()) return CellValue::Null();
  }
  if (n == 0) return data.GetCell({});
  std::vector<int> sizes(n);
  for (int d = 0; d < n; ++d) sizes[d] = static_cast<int>(positions[d].size());
  CellValue sum;  // ⊥ until a non-⊥ input arrives.
  double outer_weight = 1.0;
  ForEachScopeCellChunked(
      data, sizes, [&](int d, int i) { return positions[d][i].first; },
      [&](const std::vector<int>& idx) {
        // Left-to-right product over the outer dimensions, so that
        // outer_weight * w_last reproduces the naive loop's weight exactly.
        outer_weight = 1.0;
        for (int d = 0; d + 1 < n; ++d) {
          outer_weight *= positions[d][idx[d]].second;
        }
      },
      [&](int i, const Chunk* chunk, int64_t off) {
        if (chunk != nullptr && !chunk->IsNull(off)) {
          sum += CellValue(chunk->ValueAt(off) *
                           (outer_weight * positions[n - 1][i].second));
        }
      });
  return sum;
}

CellValue EvaluateCell(const Cube& data, const CellRef& ref) {
  std::vector<int> leaf_coords;
  if (data.IsLeafRef(ref, &leaf_coords)) return data.GetCell(leaf_coords);
  std::vector<std::vector<std::pair<int, double>>> positions(data.num_dims());
  for (int d = 0; d < data.num_dims(); ++d) {
    positions[d] = data.PositionsUnderWeighted(d, ref[d]);
  }
  return SumOverScopeWeighted(data, positions);
}

}  // namespace olap
