#ifndef OLAP_STORAGE_SIMULATED_DISK_H_
#define OLAP_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "cube/chunk.h"
#include "cube/chunk_layout.h"
#include "storage/cube_io.h"
#include "storage/lru_cache.h"

namespace olap {

// Cost model of a rotating disk holding the cube's chunks contiguously in
// chunk-id order.
//
// The paper's Fig. 12 experiment measures query time against the physical
// separation of two related chunks on a real 20 GB cube: elapsed time grows
// with separation and then flattens "because disk seek time eventually
// becomes a constant overhead". We reproduce that mechanism directly: the
// cost of reading a chunk is a transfer cost plus a seek cost that grows
// linearly with head travel distance and saturates at the full-stroke seek
// time. (Documented substitution — see DESIGN.md §2.)
struct DiskModel {
  // Seconds of head travel per chunk of distance.
  double seek_seconds_per_chunk = 2e-7;
  // Full-stroke seek time; seek cost saturates here.
  double max_seek_seconds = 8e-3;
  // Fixed cost to transfer one chunk.
  double transfer_seconds = 1e-4;
};

// Read/seek statistics accumulated by a SimulatedDisk.
struct IoStats {
  int64_t physical_reads = 0;
  int64_t cache_hits = 0;
  int64_t evictions = 0;          // LRU entries displaced by misses.
  int64_t total_seek_chunks = 0;  // Sum of head travel distances.
  double virtual_seconds = 0.0;   // Total simulated I/O time.
};

// Charges virtual I/O time for chunk accesses, with an LRU cache in front.
// The engine's evaluation strategies call ReadChunk for every chunk they
// visit; benchmarks add stats().virtual_seconds to measured CPU time.
//
// Thread-safe: fetches are charged from parallel evaluation paths, so the
// cache, head position and stats are guarded by one mutex (the cost model
// itself is sequential — head travel depends on the previous access — so a
// finer lock would not help). Backing-file reads run outside the lock
// (positional pread).
//
// Optionally backed by a real OLAPCUB2 cube file via AttachBackingFile:
// FetchChunk then routes cache misses through the Env as ranged,
// CRC-verified reads of the file's chunk records (storage/cube_io.h) while
// charging the same cost model — the out-of-core read path of the engine.
class SimulatedDisk {
 public:
  SimulatedDisk(const DiskModel& model, int64_t cache_capacity_chunks)
      : model_(model), cache_(cache_capacity_chunks) {}

  // Accounts for accessing chunk `id`; returns the virtual seconds charged
  // (0 on a cache hit).
  double ReadChunk(ChunkId id);

  // Indexes the OLAPCUB2 file at `path` and keeps it open for FetchChunk.
  // `env` nullptr -> Env::Default(); must outlive this disk.
  Status AttachBackingFile(Env* env, const std::string& path);
  bool has_backing() const { return backing_file_ != nullptr; }

  // Reads chunk `id` from the backing file (CRC-verified), charging the
  // cost model exactly as ReadChunk does. kFailedPrecondition without a
  // backing file; kNotFound if the file stores no such chunk; kDataLoss on
  // checksum mismatch.
  Result<Chunk> FetchChunk(ChunkId id);

  // A consistent copy of the counters (safe while other threads read).
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = IoStats{};
  }
  // Drops cache contents and resets the head to chunk 0.
  void Reset();

  const DiskModel& model() const { return model_; }

 private:
  DiskModel model_;
  mutable std::mutex mu_;  // Guards cache_, head_, stats_.
  LruChunkCache cache_;
  ChunkId head_ = 0;
  IoStats stats_;
  std::unique_ptr<RandomAccessFile> backing_file_;
  CubeChunkIndex backing_index_;
};

}  // namespace olap

#endif  // OLAP_STORAGE_SIMULATED_DISK_H_
