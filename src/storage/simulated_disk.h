#ifndef OLAP_STORAGE_SIMULATED_DISK_H_
#define OLAP_STORAGE_SIMULATED_DISK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/chunk.h"
#include "cube/chunk_layout.h"
#include "storage/cube_io.h"
#include "storage/lru_cache.h"

namespace olap {

// Cost model of a rotating disk holding the cube's chunks contiguously in
// chunk-id order.
//
// The paper's Fig. 12 experiment measures query time against the physical
// separation of two related chunks on a real 20 GB cube: elapsed time grows
// with separation and then flattens "because disk seek time eventually
// becomes a constant overhead". We reproduce that mechanism directly: the
// cost of reading a chunk is a transfer cost plus a seek cost that grows
// linearly with head travel distance and saturates at the full-stroke seek
// time. (Documented substitution — see DESIGN.md §2.)
struct DiskModel {
  // Seconds of head travel per chunk of distance.
  double seek_seconds_per_chunk = 2e-7;
  // Full-stroke seek time; seek cost saturates here.
  double max_seek_seconds = 8e-3;
  // Fixed cost to transfer one chunk.
  double transfer_seconds = 1e-4;
};

// Read/seek statistics accumulated by a SimulatedDisk.
struct IoStats {
  int64_t physical_reads = 0;
  int64_t cache_hits = 0;
  int64_t evictions = 0;          // LRU entries displaced by misses.
  int64_t total_seek_chunks = 0;  // Sum of head travel distances.
  int64_t coalesced_reads = 0;    // Ranged accesses spanning > 1 chunk.
  double virtual_seconds = 0.0;   // Total simulated I/O time.
};

// Charges virtual I/O time for chunk accesses, with an LRU cache in front.
// The engine's evaluation strategies call ReadChunk for every chunk they
// visit; benchmarks add stats().virtual_seconds to measured CPU time.
//
// Thread-safe. The cache and head position are inherently sequential (the
// cost of an access depends on the previous one), so they stay behind one
// mutex — but the critical section is now just the cache touch and the
// head/seek arithmetic. Statistics accumulate in cache-line-padded stripes
// of relaxed atomics outside the lock and are merged on demand by stats(),
// so parallel fetches no longer serialise on stats accounting. The cost
// model itself stays deterministic for pipelined readers because the
// ChunkPipeline charges in schedule order from one thread (see
// storage/chunk_pipeline.h); only the data reads fan out.
//
// Optionally backed by a real OLAPCUB2 cube file via AttachBackingFile:
// FetchChunk/FetchRun then route cache misses through the Env as ranged,
// CRC-verified reads of the file's chunk records (storage/cube_io.h) while
// charging the same cost model — the out-of-core read path of the engine.
class SimulatedDisk {
 public:
  SimulatedDisk(const DiskModel& model, int64_t cache_capacity_chunks)
      : model_(model), cache_(cache_capacity_chunks) {}

  // Accounts for accessing chunk `id`; returns the virtual seconds charged
  // (0 on a cache hit).
  double ReadChunk(ChunkId id);

  // Accounts for ONE coalesced ranged access covering chunks
  // [begin, begin + count): ids resident in the cache are hits; the misses
  // are charged a single seek (head to the first miss) plus one transfer
  // each, and the head finishes on the last miss — the cost contract of a
  // single contiguous I/O, which is what makes coalescing adjacent chunk
  // ids worth it under the Fig. 12 seek model. Returns the seconds charged
  // (0 when every id hits).
  double ReadRun(ChunkId begin, int count);

  // Indexes the OLAPCUB2 file at `path` and keeps it open for FetchChunk.
  // `env` nullptr -> Env::Default(); must outlive this disk.
  Status AttachBackingFile(Env* env, const std::string& path);
  bool has_backing() const { return backing_file_ != nullptr; }
  // The backing file's chunk index (valid while has_backing()).
  const CubeChunkIndex& backing_index() const { return backing_index_; }

  // Reads chunk `id` from the backing file (CRC-verified), charging the
  // cost model exactly as ReadChunk does. kFailedPrecondition without a
  // backing file; kNotFound if the file stores no such chunk; kDataLoss on
  // checksum mismatch.
  Result<Chunk> FetchChunk(ChunkId id);

  // Ranged fetch: charges ReadRun(begin, count) and reads the chunks'
  // records with one ranged file read.
  Result<std::vector<Chunk>> FetchRun(ChunkId begin, int count);

  // Data-only ranged read of backing chunks [begin, begin + count) —
  // charges nothing. The ChunkPipeline charges the cost model separately
  // (in schedule order, from the issuing thread) and calls this from pool
  // workers; positional preads make concurrent calls safe.
  Result<std::vector<Chunk>> ReadBackingRun(ChunkId begin, int count) const;

  // A merged snapshot of the counters (safe while other threads read;
  // exact once concurrent readers have quiesced).
  IoStats stats() const;
  void ResetStats();
  // Drops cache contents, resets the head to chunk 0 and zeroes the stats.
  void Reset();

  const DiskModel& model() const { return model_; }

 private:
  // Per-stripe statistics, padded to a cache line so concurrent fetch
  // threads don't false-share. Stripes are picked by thread identity;
  // totals are exact because every field is a commutative sum. The virtual
  // time accumulates per-stripe as a double (serial and pipelined charging
  // stay on one stripe, preserving the exact pre-striping sums) and merges
  // in ascending stripe order.
  struct alignas(64) StatStripe {
    std::atomic<int64_t> physical_reads{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> seek_chunks{0};
    std::atomic<int64_t> coalesced_reads{0};
    std::atomic<double> virtual_seconds{0.0};
  };
  static constexpr int kStatStripes = 8;

  StatStripe& LocalStripe();
  static void AddSeconds(std::atomic<double>* slot, double delta);

  DiskModel model_;
  mutable std::mutex mu_;  // Guards cache_ and head_ only.
  LruChunkCache cache_;
  ChunkId head_ = 0;
  std::array<StatStripe, kStatStripes> stripes_;
  std::unique_ptr<RandomAccessFile> backing_file_;
  CubeChunkIndex backing_index_;
};

}  // namespace olap

#endif  // OLAP_STORAGE_SIMULATED_DISK_H_
