#ifndef OLAP_STORAGE_CRC32C_H_
#define OLAP_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace olap {

// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every section and chunk record of the OLAPCUB2 cube
// file format (see storage/cube_io.h). Software table implementation; no
// hardware dependency.

// Extends `crc` (the running checksum of bytes seen so far, 0 to start)
// with `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// Checksum of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace olap

#endif  // OLAP_STORAGE_CRC32C_H_
