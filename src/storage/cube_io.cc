#include "storage/cube_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "storage/compression.h"

namespace olap {

namespace {

constexpr char kMagic[8] = {'O', 'L', 'A', 'P', 'C', 'U', 'B', '1'};

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void U32(uint32_t v) { out_.write(reinterpret_cast<const char*>(&v), 4); }
  void I32(int32_t v) { out_.write(reinterpret_cast<const char*>(&v), 4); }
  void U64(uint64_t v) { out_.write(reinterpret_cast<const char*>(&v), 8); }
  void F64(double v) { out_.write(reinterpret_cast<const char*>(&v), 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  void Bitset(const DynamicBitset& b) {
    U32(static_cast<uint32_t>(b.size()));
    std::vector<int> bits = b.ToVector();
    U32(static_cast<uint32_t>(bits.size()));
    for (int bit : bits) I32(bit);
  }

 private:
  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  bool ok() const { return static_cast<bool>(in_) && !failed_; }
  void Fail() { failed_ = true; }

  uint32_t U32() {
    uint32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), 4);
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), 8);
    return v;
  }
  double F64() {
    double v = 0;
    in_.read(reinterpret_cast<char*>(&v), 8);
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!in_ || n > (1u << 20)) {
      Fail();
      return "";
    }
    std::string s(n, '\0');
    in_.read(s.data(), n);
    return s;
  }
  Result<DynamicBitset> Bitset() {
    uint32_t size = U32();
    uint32_t count = U32();
    if (!ok() || size > (1u << 24) || count > size) {
      return Status::InvalidArgument("corrupt validity set");
    }
    DynamicBitset b(static_cast<int>(size));
    for (uint32_t i = 0; i < count; ++i) {
      int32_t bit = I32();
      if (bit < 0 || bit >= static_cast<int32_t>(size)) {
        return Status::InvalidArgument("corrupt validity bit");
      }
      b.Set(bit);
    }
    return b;
  }

 private:
  std::istream& in_;
  bool failed_ = false;
};

}  // namespace

Status SaveCube(const Cube& cube, const std::string& path, bool compress) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  Writer w(out);
  w.U32(compress ? 1 : 0);  // Flags word.

  const Schema& schema = cube.schema();
  w.U32(static_cast<uint32_t>(schema.num_dimensions()));
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    const Dimension& dim = schema.dimension(d);
    w.Str(dim.name());
    w.U32(static_cast<uint32_t>(dim.kind()));
    w.I32(schema.parameter_of(d));
    // Members (root first; parents always precede children by id).
    w.U32(static_cast<uint32_t>(dim.num_members()));
    for (MemberId m = 0; m < dim.num_members(); ++m) {
      w.Str(dim.member(m).name);
      w.I32(dim.member(m).parent);
      w.F64(dim.member(m).weight);
    }
    // Level names.
    w.U32(static_cast<uint32_t>(dim.level_names().size()));
    for (const std::string& level_name : dim.level_names()) w.Str(level_name);
    // Varying metadata.
    w.U32(dim.is_varying() ? 1 : 0);
    if (dim.is_varying()) {
      w.U32(static_cast<uint32_t>(dim.parameter_leaf_count()));
      w.U32(dim.parameter_is_ordered() ? 1 : 0);
      w.U32(static_cast<uint32_t>(dim.num_instances()));
      for (const MemberInstance& inst : dim.instances()) {
        w.I32(inst.member);
        w.I32(inst.parent);
        w.Bitset(inst.validity);
      }
    }
  }

  // Layout.
  const ChunkLayout& layout = cube.layout();
  w.U32(static_cast<uint32_t>(layout.num_dims()));
  for (int s : layout.chunk_sizes()) w.I32(s);

  // Chunks.
  w.U64(static_cast<uint64_t>(cube.NumStoredChunks()));
  cube.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    w.U64(static_cast<uint64_t>(id));
    if (compress) {
      std::vector<uint8_t> bytes = CompressChunk(chunk);
      w.U32(static_cast<uint32_t>(bytes.size()));
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    } else {
      for (int64_t i = 0; i < chunk.size(); ++i) {
        w.F64(CellValue::ToStorage(chunk.Get(i)));
      }
    }
  });
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<Cube> LoadCube(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an OLAPCUB1 file");
  }
  Reader r(in);

  uint32_t flags = r.U32();
  if (!r.ok() || flags > 1) {
    return Status::InvalidArgument("unknown cube file flags");
  }
  const bool compressed = flags == 1;

  uint32_t num_dims = r.U32();
  if (!r.ok() || num_dims == 0 || num_dims > 64) {
    return Status::InvalidArgument("corrupt dimension count");
  }
  Schema schema;
  std::vector<int> parameter_of(num_dims, -1);
  std::vector<uint32_t> varying_flags(num_dims, 0);
  struct PendingVarying {
    int param_leaf_count = 0;
    bool ordered = false;
    std::vector<MemberInstance> instances;
  };
  std::vector<PendingVarying> pending(num_dims);

  for (uint32_t d = 0; d < num_dims; ++d) {
    std::string name = r.Str();
    uint32_t kind = r.U32();
    parameter_of[d] = r.I32();
    if (!r.ok() || kind > 2) return Status::InvalidArgument("corrupt dimension");
    Dimension dim(name, static_cast<DimensionKind>(kind));
    uint32_t num_members = r.U32();
    if (!r.ok() || num_members == 0 || num_members > (1u << 24)) {
      return Status::InvalidArgument("corrupt member count");
    }
    // Member 0 is the root (created by the constructor); re-add the rest.
    {
      std::string root_name = r.Str();
      int32_t root_parent = r.I32();
      double root_weight = r.F64();
      if (root_parent != kInvalidMember) {
        return Status::InvalidArgument("corrupt root member");
      }
      (void)root_name;
      (void)root_weight;
    }
    for (uint32_t m = 1; m < num_members; ++m) {
      std::string member_name = r.Str();
      int32_t parent = r.I32();
      double weight = r.F64();
      if (!r.ok() || parent < 0 || parent >= static_cast<int32_t>(m)) {
        return Status::InvalidArgument("corrupt member parent");
      }
      Result<MemberId> added = dim.AddMember(member_name, parent, weight);
      if (!added.ok()) return added.status();
    }
    // Level names (reserved; written empty by SaveCube).
    uint32_t num_levels = r.U32();
    if (!r.ok() || num_levels > (1u << 16)) {
      return Status::InvalidArgument("corrupt level-name count");
    }
    for (uint32_t level = 0; level < num_levels; ++level) {
      std::string level_name = r.Str();
      if (!level_name.empty()) dim.SetLevelName(static_cast<int>(level), level_name);
    }
    uint32_t is_varying = r.U32();
    varying_flags[d] = is_varying;
    if (is_varying == 1) {
      PendingVarying& pv = pending[d];
      pv.param_leaf_count = static_cast<int>(r.U32());
      pv.ordered = r.U32() == 1;
      uint32_t num_instances = r.U32();
      if (!r.ok() || num_instances > (1u << 24)) {
        return Status::InvalidArgument("corrupt instance count");
      }
      pv.instances.resize(num_instances);
      for (uint32_t i = 0; i < num_instances; ++i) {
        pv.instances[i].member = r.I32();
        pv.instances[i].parent = r.I32();
        Result<DynamicBitset> validity = r.Bitset();
        if (!validity.ok()) return validity.status();
        pv.instances[i].validity = *std::move(validity);
      }
      OLAP_RETURN_IF_ERROR(dim.RestoreVarying(pv.param_leaf_count, pv.ordered,
                                              std::move(pv.instances)));
    } else if (is_varying != 0 || !r.ok()) {
      return Status::InvalidArgument("corrupt varying flag");
    }
    schema.AddDimension(std::move(dim));
  }
  // Re-wire parameter links (the dimensions are already varying, so only
  // the schema-level mapping needs recording).
  for (uint32_t d = 0; d < num_dims; ++d) {
    if (parameter_of[d] >= 0) {
      if (parameter_of[d] >= static_cast<int>(num_dims) || varying_flags[d] != 1) {
        return Status::InvalidArgument("corrupt parameter wiring");
      }
      OLAP_RETURN_IF_ERROR(schema.RestoreVaryingLink(static_cast<int>(d),
                                                     parameter_of[d]));
    }
  }

  uint32_t layout_dims = r.U32();
  if (!r.ok() || layout_dims != num_dims) {
    return Status::InvalidArgument("corrupt layout rank");
  }
  CubeOptions options;
  options.chunk_sizes.resize(num_dims);
  for (uint32_t d = 0; d < num_dims; ++d) {
    options.chunk_sizes[d] = r.I32();
    if (!r.ok() || options.chunk_sizes[d] <= 0) {
      return Status::InvalidArgument("corrupt chunk size");
    }
  }
  Cube cube(std::move(schema), options);

  uint64_t num_chunks = r.U64();
  if (!r.ok() || num_chunks > (1ull << 32)) {
    return Status::InvalidArgument("corrupt chunk count");
  }
  const int64_t cells_per_chunk = cube.layout().cells_per_chunk();
  for (uint64_t c = 0; c < num_chunks; ++c) {
    uint64_t id = r.U64();
    if (!r.ok() || static_cast<int64_t>(id) >= cube.layout().num_chunks()) {
      return Status::InvalidArgument("corrupt chunk id");
    }
    Chunk* chunk = cube.GetOrCreateChunk(static_cast<ChunkId>(id));
    if (compressed) {
      uint32_t num_bytes = r.U32();
      if (!r.ok() || num_bytes > (1u << 28)) {
        return Status::InvalidArgument("corrupt compressed chunk size");
      }
      std::vector<uint8_t> bytes(num_bytes);
      in.read(reinterpret_cast<char*>(bytes.data()), num_bytes);
      if (!in) return Status::InvalidArgument("truncated compressed chunk");
      Result<Chunk> decoded = DecompressChunk(bytes, cells_per_chunk);
      if (!decoded.ok()) return decoded.status();
      *chunk = *std::move(decoded);
    } else {
      for (int64_t i = 0; i < cells_per_chunk; ++i) {
        chunk->Set(i, CellValue::FromStorage(r.F64()));
      }
      if (!r.ok()) return Status::InvalidArgument("truncated chunk data");
    }
  }
  return cube;
}

Result<int64_t> FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return static_cast<int64_t>(in.tellg());
}

}  // namespace olap
