#include "storage/cube_io.h"

#include <cstdint>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "storage/compression.h"
#include "storage/crc32c.h"

namespace olap {

namespace {

constexpr char kMagicV1[8] = {'O', 'L', 'A', 'P', 'C', 'U', 'B', '1'};
constexpr char kMagicV2[8] = {'O', 'L', 'A', 'P', 'C', 'U', 'B', '2'};

// Section tags: folded into each section's CRC32C for domain separation
// (a schema section can't be mistaken for a layout section) but never
// written to the file.
constexpr char kTagSchema[4] = {'S', 'C', 'H', 'M'};
constexpr char kTagLayout[4] = {'L', 'A', 'Y', 'T'};
constexpr char kTagChunkDir[4] = {'C', 'D', 'I', 'R'};
constexpr char kTagChunk[4] = {'C', 'H', 'N', 'K'};

// Serializes primitives into an in-memory buffer (native little-endian,
// matching the v1 stream format byte for byte).
class BufWriter {
 public:
  explicit BufWriter(std::string* out) : out_(out) {}

  void Raw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  void U32(uint32_t v) { Raw(&v, 4); }
  void I32(int32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Bitset(const DynamicBitset& b) {
    U32(static_cast<uint32_t>(b.size()));
    std::vector<int> bits = b.ToVector();
    U32(static_cast<uint32_t>(bits.size()));
    for (int bit : bits) I32(bit);
  }

 private:
  std::string* out_;
};

// Bounds-checked reader over an in-memory byte span. Every accessor fails
// softly (returns zero, sets the fail bit) on overrun — corruption can
// only ever surface as a Status, never as UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return !failed_; }
  void Fail() { failed_ = true; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }

  bool Skip(size_t n) {
    if (n > remaining()) {
      Fail();
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view Bytes(size_t n) {
    if (n > remaining()) {
      Fail();
      return {};
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  uint32_t U32() { return ReadPod<uint32_t>(); }
  int32_t I32() { return ReadPod<int32_t>(); }
  uint64_t U64() { return ReadPod<uint64_t>(); }
  double F64() { return ReadPod<double>(); }

  std::string Str() {
    uint32_t n = U32();
    if (!ok() || n > (1u << 20) || n > remaining()) {
      Fail();
      return "";
    }
    return std::string(Bytes(n));
  }

  Result<DynamicBitset> Bitset() {
    uint32_t size = U32();
    uint32_t count = U32();
    if (!ok() || size > (1u << 24) || count > size ||
        static_cast<size_t>(count) * 4 > remaining()) {
      Fail();
      return Status::DataLoss("corrupt validity set");
    }
    DynamicBitset b(static_cast<int>(size));
    for (uint32_t i = 0; i < count; ++i) {
      int32_t bit = I32();
      if (bit < 0 || bit >= static_cast<int32_t>(size)) {
        Fail();
        return Status::DataLoss("corrupt validity bit");
      }
      b.Set(bit);
    }
    return b;
  }

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    if (sizeof(T) > remaining()) {
      Fail();
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

uint32_t SectionCrc(const char tag[4], uint64_t length, std::string_view payload) {
  uint32_t crc = Crc32cExtend(0, tag, 4);
  crc = Crc32cExtend(crc, &length, 8);
  return Crc32cExtend(crc, payload.data(), payload.size());
}

uint32_t ChunkRecordCrc(uint64_t id, uint32_t nbytes, std::string_view payload) {
  uint32_t crc = Crc32cExtend(0, kTagChunk, 4);
  crc = Crc32cExtend(crc, &id, 8);
  crc = Crc32cExtend(crc, &nbytes, 4);
  return Crc32cExtend(crc, payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Serialization (shared between format versions; the payload encodings are
// identical, only the framing differs).

std::string SerializeSchema(const Cube& cube) {
  std::string out;
  BufWriter w(&out);
  const Schema& schema = cube.schema();
  w.U32(static_cast<uint32_t>(schema.num_dimensions()));
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    const Dimension& dim = schema.dimension(d);
    w.Str(dim.name());
    w.U32(static_cast<uint32_t>(dim.kind()));
    w.I32(schema.parameter_of(d));
    // Members (root first; parents always precede children by id).
    w.U32(static_cast<uint32_t>(dim.num_members()));
    for (MemberId m = 0; m < dim.num_members(); ++m) {
      w.Str(dim.member(m).name);
      w.I32(dim.member(m).parent);
      w.F64(dim.member(m).weight);
    }
    // Level names.
    w.U32(static_cast<uint32_t>(dim.level_names().size()));
    for (const std::string& level_name : dim.level_names()) w.Str(level_name);
    // Varying metadata.
    w.U32(dim.is_varying() ? 1 : 0);
    if (dim.is_varying()) {
      w.U32(static_cast<uint32_t>(dim.parameter_leaf_count()));
      w.U32(dim.parameter_is_ordered() ? 1 : 0);
      w.U32(static_cast<uint32_t>(dim.num_instances()));
      for (const MemberInstance& inst : dim.instances()) {
        w.I32(inst.member);
        w.I32(inst.parent);
        w.Bitset(inst.validity);
      }
    }
  }
  return out;
}

std::string SerializeLayout(const Cube& cube) {
  std::string out;
  BufWriter w(&out);
  const ChunkLayout& layout = cube.layout();
  w.U32(static_cast<uint32_t>(layout.num_dims()));
  for (int s : layout.chunk_sizes()) w.I32(s);
  return out;
}

std::string SerializeChunkPayload(const Chunk& chunk, bool compress) {
  std::string out;
  if (compress) {
    std::vector<uint8_t> bytes = CompressChunk(chunk);
    out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  } else {
    // Bulk bitmap->sentinel expansion (one kernel pass), then one append:
    // the disk format stays the v1 sentinel-double stream byte for byte.
    BufWriter w(&out);
    std::vector<double> sentinel(static_cast<size_t>(chunk.size()));
    chunk.FillSentinel(sentinel.data());
    w.Raw(sentinel.data(), sentinel.size() * sizeof(double));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing (shared).

Status ParseSchema(ByteReader& r, Schema* out) {
  uint32_t num_dims = r.U32();
  if (!r.ok() || num_dims == 0 || num_dims > 64) {
    return Status::DataLoss("corrupt dimension count");
  }
  Schema schema;
  std::vector<int> parameter_of(num_dims, -1);
  std::vector<uint32_t> varying_flags(num_dims, 0);

  for (uint32_t d = 0; d < num_dims; ++d) {
    std::string name = r.Str();
    uint32_t kind = r.U32();
    parameter_of[d] = r.I32();
    if (!r.ok() || kind > 2) return Status::DataLoss("corrupt dimension");
    Dimension dim(name, static_cast<DimensionKind>(kind));
    uint32_t num_members = r.U32();
    if (!r.ok() || num_members == 0 || num_members > (1u << 24)) {
      return Status::DataLoss("corrupt member count");
    }
    // Member 0 is the root (created by the constructor); re-add the rest.
    {
      std::string root_name = r.Str();
      int32_t root_parent = r.I32();
      double root_weight = r.F64();
      if (!r.ok() || root_parent != kInvalidMember) {
        return Status::DataLoss("corrupt root member");
      }
      (void)root_name;
      (void)root_weight;
    }
    for (uint32_t m = 1; m < num_members; ++m) {
      std::string member_name = r.Str();
      int32_t parent = r.I32();
      double weight = r.F64();
      if (!r.ok() || parent < 0 || parent >= static_cast<int32_t>(m)) {
        return Status::DataLoss("corrupt member parent");
      }
      Result<MemberId> added = dim.AddMember(member_name, parent, weight);
      if (!added.ok()) return added.status();
    }
    uint32_t num_levels = r.U32();
    if (!r.ok() || num_levels > (1u << 16)) {
      return Status::DataLoss("corrupt level-name count");
    }
    for (uint32_t level = 0; level < num_levels; ++level) {
      std::string level_name = r.Str();
      if (!r.ok()) return Status::DataLoss("corrupt level name");
      if (!level_name.empty()) dim.SetLevelName(static_cast<int>(level), level_name);
    }
    uint32_t is_varying = r.U32();
    varying_flags[d] = is_varying;
    if (is_varying == 1) {
      int param_leaf_count = static_cast<int>(r.U32());
      bool ordered = r.U32() == 1;
      uint32_t num_instances = r.U32();
      // Each instance needs ≥ 16 bytes on disk, which bounds the resize
      // below against corrupt counts.
      if (!r.ok() || num_instances > (1u << 24) ||
          static_cast<size_t>(num_instances) * 16 > r.remaining()) {
        return Status::DataLoss("corrupt instance count");
      }
      std::vector<MemberInstance> instances(num_instances);
      for (uint32_t i = 0; i < num_instances; ++i) {
        instances[i].member = r.I32();
        instances[i].parent = r.I32();
        Result<DynamicBitset> validity = r.Bitset();
        if (!validity.ok()) return validity.status();
        instances[i].validity = *std::move(validity);
      }
      OLAP_RETURN_IF_ERROR(
          dim.RestoreVarying(param_leaf_count, ordered, std::move(instances)));
    } else if (is_varying != 0 || !r.ok()) {
      return Status::DataLoss("corrupt varying flag");
    }
    schema.AddDimension(std::move(dim));
  }
  // Re-wire parameter links (the dimensions are already varying, so only
  // the schema-level mapping needs recording).
  for (uint32_t d = 0; d < num_dims; ++d) {
    if (parameter_of[d] >= 0) {
      if (parameter_of[d] >= static_cast<int>(num_dims) || varying_flags[d] != 1) {
        return Status::DataLoss("corrupt parameter wiring");
      }
      OLAP_RETURN_IF_ERROR(
          schema.RestoreVaryingLink(static_cast<int>(d), parameter_of[d]));
    }
  }
  *out = std::move(schema);
  return Status::Ok();
}

Status ParseLayout(ByteReader& r, int num_dims, CubeOptions* out) {
  uint32_t layout_dims = r.U32();
  if (!r.ok() || layout_dims != static_cast<uint32_t>(num_dims)) {
    return Status::DataLoss("corrupt layout rank");
  }
  out->chunk_sizes.resize(num_dims);
  for (int d = 0; d < num_dims; ++d) {
    out->chunk_sizes[d] = r.I32();
    if (!r.ok() || out->chunk_sizes[d] <= 0) {
      return Status::DataLoss("corrupt chunk size");
    }
  }
  return Status::Ok();
}

Status DecodeChunkPayload(std::string_view payload, bool compressed,
                          int64_t cells_per_chunk, Chunk* chunk) {
  if (compressed) {
    std::vector<uint8_t> bytes(payload.begin(), payload.end());
    Result<Chunk> decoded = DecompressChunk(bytes, cells_per_chunk);
    if (!decoded.ok()) {
      return Status::DataLoss("corrupt compressed chunk: " +
                              decoded.status().message());
    }
    *chunk = *std::move(decoded);
    return Status::Ok();
  }
  if (payload.size() != static_cast<size_t>(cells_per_chunk) * 8) {
    return Status::DataLoss("raw chunk payload has wrong size");
  }
  // One aligned bulk copy out of the (unaligned, type-punned) payload, then
  // one kernel pass splitting sentinel doubles into values + bitmap. Any
  // NaN decodes as ⊥, exactly like the old per-cell FromStorage loop.
  std::vector<double> sentinel(static_cast<size_t>(cells_per_chunk));
  std::memcpy(sentinel.data(), payload.data(), payload.size());
  *chunk = Chunk(cells_per_chunk);
  chunk->AssignRunFromSentinel(0, sentinel.data(), cells_per_chunk);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Writing.

Status AppendSection(WritableFile* file, const char tag[4],
                     const std::string& payload) {
  std::string framed;
  BufWriter w(&framed);
  w.U64(payload.size());
  w.Raw(payload.data(), payload.size());
  w.U32(SectionCrc(tag, payload.size(), payload));
  return file->Append(framed);
}

Status WriteCubeFileV2(const Cube& cube, const SaveOptions& options,
                       WritableFile* file) {
  // Header.
  std::string header(kMagicV2, sizeof(kMagicV2));
  BufWriter hw(&header);
  hw.U32(options.compress ? 1 : 0);
  uint32_t header_crc = Crc32c(header.data(), header.size());
  hw.U32(header_crc);
  OLAP_RETURN_IF_ERROR(file->Append(header));

  OLAP_RETURN_IF_ERROR(AppendSection(file, kTagSchema, SerializeSchema(cube)));
  OLAP_RETURN_IF_ERROR(AppendSection(file, kTagLayout, SerializeLayout(cube)));

  // Chunk directory.
  {
    std::string dir;
    BufWriter w(&dir);
    uint64_t num_chunks = static_cast<uint64_t>(cube.NumStoredChunks());
    w.U64(num_chunks);
    uint32_t crc = Crc32cExtend(0, kTagChunkDir, 4);
    crc = Crc32cExtend(crc, &num_chunks, 8);
    w.U32(crc);
    OLAP_RETURN_IF_ERROR(file->Append(dir));
  }

  // Chunk records. ForEachChunk offers no early exit, so remember the
  // first failure and stop touching the file after it.
  Status chunk_status;
  cube.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!chunk_status.ok()) return;
    std::string payload = SerializeChunkPayload(chunk, options.compress);
    std::string record;
    BufWriter w(&record);
    w.U64(static_cast<uint64_t>(id));
    w.U32(static_cast<uint32_t>(payload.size()));
    w.Raw(payload.data(), payload.size());
    w.U32(ChunkRecordCrc(static_cast<uint64_t>(id),
                         static_cast<uint32_t>(payload.size()), payload));
    chunk_status = file->Append(record);
  });
  return chunk_status;
}

Status WriteCubeFileV1(const Cube& cube, const SaveOptions& options,
                       WritableFile* file) {
  std::string head(kMagicV1, sizeof(kMagicV1));
  BufWriter hw(&head);
  hw.U32(options.compress ? 1 : 0);
  OLAP_RETURN_IF_ERROR(file->Append(head));
  OLAP_RETURN_IF_ERROR(file->Append(SerializeSchema(cube)));
  OLAP_RETURN_IF_ERROR(file->Append(SerializeLayout(cube)));

  std::string count;
  BufWriter cw(&count);
  cw.U64(static_cast<uint64_t>(cube.NumStoredChunks()));
  OLAP_RETURN_IF_ERROR(file->Append(count));

  Status chunk_status;
  cube.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
    if (!chunk_status.ok()) return;
    std::string record;
    BufWriter w(&record);
    w.U64(static_cast<uint64_t>(id));
    std::string payload = SerializeChunkPayload(chunk, options.compress);
    if (options.compress) w.U32(static_cast<uint32_t>(payload.size()));
    w.Raw(payload.data(), payload.size());
    chunk_status = file->Append(record);
  });
  return chunk_status;
}

// ---------------------------------------------------------------------------
// Reading.

// Reads one framed section; *payload points into the backing string.
Status ReadSection(ByteReader& r, const char tag[4], const char* what,
                   std::string_view* payload) {
  uint64_t length = r.U64();
  if (!r.ok() || length > r.remaining()) {
    return Status::DataLoss(std::string("truncated ") + what + " section");
  }
  *payload = r.Bytes(static_cast<size_t>(length));
  uint32_t stored_crc = r.U32();
  if (!r.ok()) {
    return Status::DataLoss(std::string("truncated ") + what + " section");
  }
  if (stored_crc != SectionCrc(tag, length, *payload)) {
    return Status::DataLoss(std::string(what) + " section checksum mismatch");
  }
  return Status::Ok();
}

Result<Cube> LoadV2(std::string_view data, const std::string& path,
                    const LoadOptions& options) {
  ByteReader r(data);
  r.Skip(sizeof(kMagicV2));
  uint32_t flags = r.U32();
  uint32_t header_crc = r.U32();
  if (!r.ok() || header_crc != Crc32c(data.data(), sizeof(kMagicV2) + 4)) {
    return Status::DataLoss("'" + path + "': cube header checksum mismatch");
  }
  if (flags > 1) {
    return Status::DataLoss("'" + path + "': unknown cube file flags");
  }
  const bool compressed = flags == 1;

  std::string_view schema_payload;
  OLAP_RETURN_IF_ERROR(ReadSection(r, kTagSchema, "schema", &schema_payload));
  Schema schema;
  {
    ByteReader sr(schema_payload);
    OLAP_RETURN_IF_ERROR(ParseSchema(sr, &schema));
    if (sr.remaining() != 0) {
      return Status::DataLoss("trailing bytes in schema section");
    }
  }
  const int num_dims = schema.num_dimensions();

  std::string_view layout_payload;
  OLAP_RETURN_IF_ERROR(ReadSection(r, kTagLayout, "layout", &layout_payload));
  CubeOptions cube_options;
  {
    ByteReader lr(layout_payload);
    OLAP_RETURN_IF_ERROR(ParseLayout(lr, num_dims, &cube_options));
    if (lr.remaining() != 0) {
      return Status::DataLoss("trailing bytes in layout section");
    }
  }
  Cube cube(std::move(schema), cube_options);
  const int64_t cells_per_chunk = cube.layout().cells_per_chunk();

  // Chunk directory.
  uint64_t num_chunks = r.U64();
  uint32_t dir_crc = r.U32();
  bool directory_trusted = r.ok();
  if (directory_trusted) {
    uint32_t crc = Crc32cExtend(0, kTagChunkDir, 4);
    crc = Crc32cExtend(crc, &num_chunks, 8);
    directory_trusted = dir_crc == crc;
  }
  if (!directory_trusted && !options.recover) {
    return Status::DataLoss("'" + path + "': chunk directory corrupt");
  }
  if (directory_trusted && num_chunks > r.remaining() / 16) {
    if (!options.recover) {
      return Status::DataLoss("'" + path + "': impossible chunk count");
    }
    directory_trusted = false;
  }

  RecoveryReport report;
  report.chunks_total =
      directory_trusted ? static_cast<int64_t>(num_chunks) : 0;
  // With an untrusted directory (recovery mode only), walk records until
  // the data runs out; a record needs at least id + nbytes + crc.
  auto more_records = [&](uint64_t scanned) {
    return directory_trusted ? scanned < num_chunks : r.remaining() >= 16;
  };
  Status first_error;
  for (uint64_t c = 0; more_records(c); ++c) {
    if (!directory_trusted) report.chunks_total = static_cast<int64_t>(c + 1);
    uint64_t id = r.U64();
    uint32_t nbytes = r.U32();
    if (!r.ok() || nbytes > r.remaining()) {
      first_error = Status::DataLoss("'" + path + "': truncated chunk record");
      // Framing is gone; nothing past this point can be located.
      report.chunks_dropped +=
          directory_trusted ? static_cast<int64_t>(num_chunks - c) : 1;
      break;
    }
    std::string_view payload = r.Bytes(nbytes);
    uint32_t stored_crc = r.U32();
    if (!r.ok()) {
      first_error = Status::DataLoss("'" + path + "': truncated chunk record");
      report.chunks_dropped +=
          directory_trusted ? static_cast<int64_t>(num_chunks - c) : 1;
      break;
    }
    Status record_status;
    if (stored_crc != ChunkRecordCrc(id, nbytes, payload)) {
      record_status =
          Status::DataLoss("'" + path + "': chunk " + std::to_string(id) +
                           " checksum mismatch");
    } else if (static_cast<int64_t>(id) >= cube.layout().num_chunks()) {
      record_status = Status::DataLoss("'" + path + "': corrupt chunk id");
    } else {
      Chunk decoded(cells_per_chunk);
      record_status =
          DecodeChunkPayload(payload, compressed, cells_per_chunk, &decoded);
      if (record_status.ok()) {
        *cube.GetOrCreateChunk(static_cast<ChunkId>(id)) = std::move(decoded);
        ++report.chunks_salvaged;
      }
    }
    if (!record_status.ok()) {
      if (!options.recover) return record_status;
      if (first_error.ok()) first_error = record_status;
      ++report.chunks_dropped;
    }
  }
  if (options.report != nullptr) *options.report = report;
  if (!options.recover) {
    if (!first_error.ok()) return first_error;
    if (r.remaining() != 0) {
      return Status::DataLoss("'" + path + "': trailing bytes after chunks");
    }
  }
  return cube;
}

Result<Cube> LoadV1(std::string_view data, const std::string& path,
                    const LoadOptions& options) {
  ByteReader r(data);
  r.Skip(sizeof(kMagicV1));
  uint32_t flags = r.U32();
  if (!r.ok() || flags > 1) {
    return Status::DataLoss("'" + path + "': unknown cube file flags");
  }
  const bool compressed = flags == 1;

  Schema schema;
  OLAP_RETURN_IF_ERROR(ParseSchema(r, &schema));
  const int num_dims = schema.num_dimensions();
  CubeOptions cube_options;
  OLAP_RETURN_IF_ERROR(ParseLayout(r, num_dims, &cube_options));
  Cube cube(std::move(schema), cube_options);
  const int64_t cells_per_chunk = cube.layout().cells_per_chunk();

  uint64_t num_chunks = r.U64();
  if (!r.ok() || num_chunks > r.remaining() / 8) {
    return Status::DataLoss("'" + path + "': corrupt chunk count");
  }
  for (uint64_t c = 0; c < num_chunks; ++c) {
    uint64_t id = r.U64();
    if (!r.ok() || static_cast<int64_t>(id) >= cube.layout().num_chunks()) {
      return Status::DataLoss("'" + path + "': corrupt chunk id");
    }
    Chunk* chunk = cube.GetOrCreateChunk(static_cast<ChunkId>(id));
    if (compressed) {
      uint32_t nbytes = r.U32();
      if (!r.ok() || nbytes > r.remaining()) {
        return Status::DataLoss("'" + path + "': truncated compressed chunk");
      }
      OLAP_RETURN_IF_ERROR(DecodeChunkPayload(r.Bytes(nbytes), /*compressed=*/true,
                                              cells_per_chunk, chunk));
    } else {
      std::string_view payload =
          r.Bytes(static_cast<size_t>(cells_per_chunk) * 8);
      if (!r.ok()) {
        return Status::DataLoss("'" + path + "': truncated chunk data");
      }
      OLAP_RETURN_IF_ERROR(DecodeChunkPayload(payload, /*compressed=*/false,
                                              cells_per_chunk, chunk));
    }
  }
  if (options.report != nullptr) {
    *options.report = RecoveryReport{};
    options.report->chunks_total = static_cast<int64_t>(num_chunks);
    options.report->chunks_salvaged = static_cast<int64_t>(num_chunks);
  }
  return cube;
}

Status SaveCubeImpl(const Cube& cube, const std::string& path,
                    const SaveOptions& options) {
  if (options.format_version != 1 && options.format_version != 2) {
    return Status::InvalidArgument("unsupported cube format version " +
                                   std::to_string(options.format_version));
  }
  Env* env = options.env != nullptr ? options.env : Env::Default();

  // Durability protocol: write a temp file, fsync, then atomically rename
  // over the destination. A crash at any step leaves the previous file at
  // `path` untouched and complete.
  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<WritableFile>> file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();

  Status written = options.format_version == 2
                       ? WriteCubeFileV2(cube, options, file->get())
                       : WriteCubeFileV1(cube, options, file->get());
  if (written.ok() && options.sync) written = (*file)->Sync();
  Status closed = (*file)->Close();
  if (written.ok()) written = closed;
  if (!written.ok()) {
    (void)env->RemoveFile(tmp);  // Best effort; the temp file is garbage.
    return written;
  }
  Status renamed = env->RenameFile(tmp, path);
  if (!renamed.ok()) {
    (void)env->RemoveFile(tmp);
    return renamed;
  }
  return Status::Ok();
}

Result<Cube> LoadCubeImpl(const std::string& path, const LoadOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (options.report != nullptr) *options.report = RecoveryReport{};
  std::string data;
  OLAP_RETURN_IF_ERROR(env->ReadFileToString(path, &data));
  if (data.size() < sizeof(kMagicV2)) {
    return Status::DataLoss("'" + path + "' is too short to hold a cube header");
  }
  if (std::memcmp(data.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    return LoadV2(data, path, options);
  }
  if (std::memcmp(data.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    return LoadV1(data, path, options);
  }
  return Status::InvalidArgument("'" + path + "' is not an OLAP cube file");
}

}  // namespace

// Save/load wrappers: the implementation above does the work; here each
// call gets a trace span (closed with the error status on failure) and a
// metrics count, so storage activity shows up in query profiles and
// snapshots alongside everything else.
Status SaveCube(const Cube& cube, const std::string& path,
                const SaveOptions& options) {
  TraceSpan span("storage.save");
  static Counter* saves = MetricsRegistry::Global().counter("storage.saves");
  static Counter* failures =
      MetricsRegistry::Global().counter("storage.save_failures");
  saves->Increment();
  Status status = SaveCubeImpl(cube, path, options);
  if (!status.ok()) {
    failures->Increment();
    span.SetError(status);
  }
  return status;
}

Result<Cube> LoadCube(const std::string& path, const LoadOptions& options) {
  TraceSpan span("storage.load");
  static Counter* loads = MetricsRegistry::Global().counter("storage.loads");
  static Counter* failures =
      MetricsRegistry::Global().counter("storage.load_failures");
  loads->Increment();
  Result<Cube> cube = LoadCubeImpl(path, options);
  if (!cube.ok()) {
    failures->Increment();
    span.SetError(cube.status());
  }
  return cube;
}

Result<Cube> LoadCubeWithRetry(const std::string& path,
                               const LoadOptions& options,
                               const RetryPolicy& policy, Clock* clock) {
  TraceSpan span("storage.load_retry");
  static Counter* attempts =
      MetricsRegistry::Global().counter("storage.retry.attempts");
  if (clock == nullptr) clock = Clock::Real();
  Result<Cube> cube = CallWithRetry(policy, clock, [&] {
    attempts->Increment();
    return LoadCube(path, options);
  });
  if (!cube.ok()) span.SetError(cube.status());
  return cube;
}

Result<CubeChunkIndex> IndexCubeChunks(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  Result<std::unique_ptr<RandomAccessFile>> opened =
      env->NewRandomAccessFile(path);
  if (!opened.ok()) return opened.status();
  RandomAccessFile* file = opened->get();
  Result<int64_t> size = file->Size();
  if (!size.ok()) return size.status();
  const int64_t file_size = *size;

  auto read_at = [&](int64_t offset, size_t n, std::string* out) -> Status {
    if (offset + static_cast<int64_t>(n) > file_size) {
      return Status::DataLoss("'" + path + "': truncated cube file");
    }
    return file->Read(offset, n, out);
  };

  // Header: magic + flags + crc.
  std::string header;
  OLAP_RETURN_IF_ERROR(read_at(0, sizeof(kMagicV2) + 8, &header));
  if (std::memcmp(header.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::InvalidArgument(
        "'" + path + "': chunk indexing requires the OLAPCUB2 format");
  }
  ByteReader hr(std::string_view(header).substr(sizeof(kMagicV2)));
  uint32_t flags = hr.U32();
  uint32_t header_crc = hr.U32();
  if (header_crc != Crc32c(header.data(), sizeof(kMagicV2) + 4) || flags > 1) {
    return Status::DataLoss("'" + path + "': cube header checksum mismatch");
  }

  CubeChunkIndex index;
  index.compressed = flags == 1;
  int64_t offset = sizeof(kMagicV2) + 8;

  // Schema section: skip the payload, keep only the framing honest.
  {
    std::string len_bytes;
    OLAP_RETURN_IF_ERROR(read_at(offset, 8, &len_bytes));
    uint64_t length;
    std::memcpy(&length, len_bytes.data(), 8);
    if (static_cast<int64_t>(length) < 0 ||
        offset + 12 + static_cast<int64_t>(length) > file_size) {
      return Status::DataLoss("'" + path + "': impossible schema length");
    }
    offset += 8 + static_cast<int64_t>(length) + 4;
  }

  // Layout section: small; read and CRC-verify it fully.
  {
    std::string len_bytes;
    OLAP_RETURN_IF_ERROR(read_at(offset, 8, &len_bytes));
    uint64_t length;
    std::memcpy(&length, len_bytes.data(), 8);
    if (length > (1u << 16) ||
        offset + 12 + static_cast<int64_t>(length) > file_size) {
      return Status::DataLoss("'" + path + "': impossible layout length");
    }
    std::string body;
    OLAP_RETURN_IF_ERROR(read_at(offset + 8, static_cast<size_t>(length) + 4, &body));
    std::string_view payload(body.data(), static_cast<size_t>(length));
    uint32_t stored_crc;
    std::memcpy(&stored_crc, body.data() + length, 4);
    if (stored_crc != SectionCrc(kTagLayout, length, payload)) {
      return Status::DataLoss("'" + path + "': layout section checksum mismatch");
    }
    ByteReader lr(payload);
    uint32_t rank = lr.U32();
    if (!lr.ok() || rank == 0 || rank > 64) {
      return Status::DataLoss("'" + path + "': corrupt layout rank");
    }
    int64_t cells = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      int32_t chunk_size = lr.I32();
      if (!lr.ok() || chunk_size <= 0 || cells > (int64_t{1} << 40) / chunk_size) {
        return Status::DataLoss("'" + path + "': corrupt chunk size");
      }
      cells *= chunk_size;
    }
    index.cells_per_chunk = cells;
    offset += 8 + static_cast<int64_t>(length) + 4;
  }

  // Chunk directory.
  uint64_t num_chunks;
  {
    std::string dir;
    OLAP_RETURN_IF_ERROR(read_at(offset, 12, &dir));
    uint32_t stored_crc;
    std::memcpy(&num_chunks, dir.data(), 8);
    std::memcpy(&stored_crc, dir.data() + 8, 4);
    uint32_t crc = Crc32cExtend(0, kTagChunkDir, 4);
    crc = Crc32cExtend(crc, &num_chunks, 8);
    if (stored_crc != crc) {
      return Status::DataLoss("'" + path + "': chunk directory corrupt");
    }
    offset += 12;
  }

  // Record headers: id + nbytes, payload skipped.
  for (uint64_t c = 0; c < num_chunks; ++c) {
    std::string head;
    OLAP_RETURN_IF_ERROR(read_at(offset, 12, &head));
    uint64_t id;
    uint32_t nbytes;
    std::memcpy(&id, head.data(), 8);
    std::memcpy(&nbytes, head.data() + 8, 4);
    if (offset + 12 + static_cast<int64_t>(nbytes) + 4 > file_size) {
      return Status::DataLoss("'" + path + "': truncated chunk record");
    }
    CubeChunkIndex::Entry entry;
    entry.payload_offset = offset + 12;
    entry.nbytes = nbytes;
    if (!index.entries.emplace(static_cast<ChunkId>(id), entry).second) {
      return Status::DataLoss("'" + path + "': duplicate chunk id " +
                              std::to_string(id));
    }
    offset += 12 + static_cast<int64_t>(nbytes) + 4;
  }
  if (offset != file_size) {
    return Status::DataLoss("'" + path + "': trailing bytes after chunks");
  }
  return index;
}

Result<Chunk> ReadIndexedChunk(RandomAccessFile* file,
                               const CubeChunkIndex& index, ChunkId id) {
  auto it = index.entries.find(id);
  if (it == index.entries.end()) {
    return Status::NotFound("no stored chunk " + std::to_string(id));
  }
  const CubeChunkIndex::Entry& entry = it->second;
  std::string body;
  OLAP_RETURN_IF_ERROR(
      file->Read(entry.payload_offset, static_cast<size_t>(entry.nbytes) + 4, &body));
  std::string_view payload(body.data(), entry.nbytes);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, body.data() + entry.nbytes, 4);
  if (stored_crc !=
      ChunkRecordCrc(static_cast<uint64_t>(id), entry.nbytes, payload)) {
    return Status::DataLoss("chunk " + std::to_string(id) +
                            " checksum mismatch");
  }
  Chunk chunk(index.cells_per_chunk);
  OLAP_RETURN_IF_ERROR(DecodeChunkPayload(payload, index.compressed,
                                          index.cells_per_chunk, &chunk));
  return chunk;
}

Result<std::vector<Chunk>> ReadIndexedChunkRun(RandomAccessFile* file,
                                               const CubeChunkIndex& index,
                                               ChunkId begin, int count) {
  if (count <= 0) return Status::InvalidArgument("empty chunk run");
  // Record framing per chunk: id u64 + nbytes u32 before the payload, CRC
  // u32 after it. Consecutively-stored ids are contiguous on disk unless
  // an id between them is unstored.
  constexpr int64_t kRecordHeaderBytes = 12;
  std::vector<const CubeChunkIndex::Entry*> entries(count);
  bool contiguous = true;
  int64_t next_record_start = -1;
  for (int i = 0; i < count; ++i) {
    auto it = index.entries.find(begin + i);
    if (it == index.entries.end()) {
      return Status::NotFound("no stored chunk " + std::to_string(begin + i));
    }
    entries[i] = &it->second;
    const int64_t record_start = it->second.payload_offset - kRecordHeaderBytes;
    if (next_record_start >= 0 && record_start != next_record_start) {
      contiguous = false;
    }
    next_record_start = it->second.payload_offset +
                        static_cast<int64_t>(it->second.nbytes) + 4;
  }
  std::vector<Chunk> out;
  out.reserve(count);
  if (!contiguous) {
    for (int i = 0; i < count; ++i) {
      Result<Chunk> one = ReadIndexedChunk(file, index, begin + i);
      if (!one.ok()) return one.status();
      out.push_back(*std::move(one));
    }
    return out;
  }
  const int64_t span_begin = entries.front()->payload_offset;
  const int64_t span_end = next_record_start;
  std::string body;
  OLAP_RETURN_IF_ERROR(
      file->Read(span_begin, static_cast<size_t>(span_end - span_begin), &body));
  for (int i = 0; i < count; ++i) {
    const CubeChunkIndex::Entry& entry = *entries[i];
    const size_t at = static_cast<size_t>(entry.payload_offset - span_begin);
    std::string_view payload(body.data() + at, entry.nbytes);
    uint32_t stored_crc;
    std::memcpy(&stored_crc, body.data() + at + entry.nbytes, 4);
    if (stored_crc != ChunkRecordCrc(static_cast<uint64_t>(begin + i),
                                     entry.nbytes, payload)) {
      return Status::DataLoss("chunk " + std::to_string(begin + i) +
                              " checksum mismatch");
    }
    Chunk chunk(index.cells_per_chunk);
    OLAP_RETURN_IF_ERROR(DecodeChunkPayload(payload, index.compressed,
                                            index.cells_per_chunk, &chunk));
    out.push_back(std::move(chunk));
  }
  return out;
}

Result<int64_t> FileSize(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->GetFileSize(path);
}

}  // namespace olap
