#ifndef OLAP_STORAGE_CHUNK_PIPELINE_H_
#define OLAP_STORAGE_CHUNK_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "cube/chunk.h"
#include "cube/chunk_layout.h"
#include "storage/simulated_disk.h"

namespace olap {

// Tuning knobs for the out-of-core chunk pipeline (DESIGN.md §10).
struct ChunkPipelineOptions {
  // Schedule entries the producer may run ahead of the consumer. The
  // lookahead window is also the coalescing horizon: only ids visible in
  // the window can be merged into one ranged read.
  int lookahead = 16;
  // Pin-table capacity: the maximum number of chunks resident at once
  // (in-flight + ready + delivered-but-unreleased). <= 0 derives
  // max(peak_pebbles, lookahead) where the caller knows the pebbling peak,
  // else max(lookahead, 1) — the paper's Sec. 5.2 pebble count becomes an
  // enforced memory budget.
  int64_t pin_budget = 0;
  // Concurrent fetch batches outstanding on the shared ThreadPool.
  int io_threads = 2;
  // Merge window-visible runs of adjacent chunk ids into single ranged
  // reads (one seek per run under the Fig. 12 cost model). Off = one
  // batch per schedule entry, still asynchronous.
  bool coalesce = true;
  // Cooperative stop signal. Once tripped: no new fetch batches are
  // issued, in-flight batches abandon their reads, and Next() returns the
  // token's status (kCancelled / kDeadlineExceeded) within ~2ms instead of
  // blocking on outstanding I/O. Pins stay valid; the destructor still
  // drains and returns every budget slot.
  CancellationToken cancel;
};

// Counters for one pipeline instance (process-wide metrics mirror these
// under pipeline.*).
struct ChunkPipelineStats {
  int64_t chunks_delivered = 0;
  int64_t prefetch_issued = 0;   // Chunk slots issued to fetch batches.
  int64_t read_batches = 0;      // Ranged reads issued.
  int64_t coalesced_reads = 0;   // Batches spanning > 1 chunk.
  int64_t ready_hits = 0;        // Next() calls served without blocking.
  int64_t stall_waits = 0;       // Next() calls that had to wait.
  int64_t pins_evicted = 0;      // Ready chunks dropped to unblock the head.
  double stall_seconds = 0.0;    // Total time Next() spent blocked.
  int64_t peak_pinned = 0;       // Watermark of resident chunks.
};

// Streams the chunks of a SimulatedDisk backing file to a consumer in a
// fixed schedule order (normally the Sec. 5.2 pebbling order), prefetching
// ahead of the consumer through a bounded pin table.
//
//   * The producer walks the schedule with a lookahead window, groups the
//     window's unissued ids into maximal runs of adjacent chunk ids, and
//     issues each run as ONE ranged, CRC-verified file read decoded on a
//     shared ThreadPool worker.
//   * The cost model is charged at issue time, on the consumer's thread,
//     in issue order — data reads never race on the head-position
//     accounting. (Run *formation* can still vary with fetch timing at
//     io_threads > 1; ChargeSchedule below is the fully deterministic
//     twin used where reproducible virtual seconds matter.)
//   * Chunks are handed out strictly in schedule order as RAII Pins. A
//     chunk stays pinned (counted against the budget) from issue until its
//     Pin is destroyed; when the pin table is full the producer stops
//     issuing (back-pressure) until a Pin releases.
//
// Contract: one consumer thread calls Next() and releases Pins; Pins must
// not outlive the pipeline. If the consumer holds `pin_budget` live Pins
// while the next scheduled chunk is still unissued, Next() returns
// kResourceExhausted instead of deadlocking — the budget must exceed the
// peak number of simultaneously held pins (= the pebbling peak when the
// schedule is a pebbling order).
//
// Results are bit-identical to a synchronous FetchChunk loop over the same
// schedule at every io_threads setting: delivery order is the schedule
// order, and decoding is pure.
class ChunkPipeline {
 public:
  // A chunk pinned in the pipeline's pin table. Releases its budget slot
  // on destruction (or Release()), which un-blocks the producer.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    bool valid() const { return pipeline_ != nullptr; }
    ChunkId id() const { return id_; }
    const Chunk& chunk() const { return chunk_; }
    void Release();

   private:
    friend class ChunkPipeline;
    ChunkPipeline* pipeline_ = nullptr;
    ChunkId id_ = 0;
    Chunk chunk_;
  };

  // `disk` must have a backing file attached and must outlive the
  // pipeline. Prefetching starts immediately.
  ChunkPipeline(SimulatedDisk* disk, std::vector<ChunkId> schedule,
                const ChunkPipelineOptions& options);
  // Drains outstanding fetch batches (blocks until workers finish).
  ~ChunkPipeline();

  ChunkPipeline(const ChunkPipeline&) = delete;
  ChunkPipeline& operator=(const ChunkPipeline&) = delete;

  // Blocks until the next scheduled chunk is resident and returns it
  // pinned. kOutOfRange once the schedule is drained; kResourceExhausted
  // on a pin-budget deadlock (see class comment); otherwise the first
  // fetch error, after which the pipeline is closed.
  Result<Pin> Next();

  bool Done() const;
  int64_t pin_budget() const { return pin_budget_; }
  // Snapshot of this pipeline's counters.
  ChunkPipelineStats stats() const;

  // Charge-only twin of the pipeline for passes that account I/O without
  // materializing data (the perspective-cube read passes): walks `schedule`
  // with the same lookahead window and run coalescing, charging
  // disk->ReadRun per batch in schedule order. Returns the virtual seconds
  // charged. Deterministic — runs entirely on the calling thread.
  static double ChargeSchedule(SimulatedDisk* disk,
                               const std::vector<ChunkId>& schedule,
                               const ChunkPipelineOptions& options);

 private:
  enum class SlotState { kPending, kInFlight, kReady, kFailed, kDelivered };
  struct Slot {
    SlotState state = SlotState::kPending;
    Chunk chunk;
    Status status = Status::Ok();
  };
  struct Batch {
    ChunkId begin = 0;
    int count = 0;
    // Slot indices to fill, grouped by id offset within [begin, begin+count).
    std::vector<std::vector<int64_t>> slots;
  };

  void MaybeIssueLocked();
  void RunBatch(Batch batch);
  void ReleaseOne();

  SimulatedDisk* const disk_;
  const std::vector<ChunkId> schedule_;
  const CancellationToken cancel_;
  const int lookahead_;
  const int64_t pin_budget_;
  const int io_threads_;
  const bool coalesce_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  // Reused (id, schedule position) window buffer for MaybeIssueLocked;
  // guarded by mu_ like the rest of the issue state.
  std::vector<std::pair<ChunkId, int64_t>> window_scratch_;
  int64_t next_deliver_ = 0;
  int64_t pinned_ = 0;
  int in_flight_batches_ = 0;
  bool cancelled_ = false;
  ChunkPipelineStats stats_;
};

}  // namespace olap

#endif  // OLAP_STORAGE_CHUNK_PIPELINE_H_
