#ifndef OLAP_STORAGE_CUBE_IO_H_
#define OLAP_STORAGE_CUBE_IO_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "cube/cube.h"
#include "storage/env.h"
#include "storage/retry.h"

namespace olap {

// Binary persistence for cubes: the full schema (dimensions, hierarchies,
// varying/parameter wiring, member instances with validity sets), the
// chunk layout, and every stored chunk's cells.
//
// ## OLAPCUB2 on-disk layout (little-endian)
//
//   offset 0   magic        "OLAPCUB2"                          8 bytes
//              flags        u32  (bit 0: chunk payloads use the ⊥-run-
//                                 length codec of storage/compression.h)
//              header_crc   u32  = CRC32C(magic ‖ flags)
//   SCHEMA     length       u64  (payload bytes)
//    section   payload      dimensions, members, instances, validity sets
//              crc          u32  = CRC32C("SCHM" ‖ length ‖ payload)
//   LAYOUT     length       u64
//    section   payload      u32 rank, i32 chunk_size per dimension
//              crc          u32  = CRC32C("LAYT" ‖ length ‖ payload)
//   CHUNK      num_chunks   u64
//    directory crc          u32  = CRC32C("CDIR" ‖ num_chunks)
//   chunk      id           u64
//    records   nbytes       u32  (payload bytes; raw = cells × 8)
//    (× num)   payload      raw doubles or compressed bytes
//              crc          u32  = CRC32C("CHNK" ‖ id ‖ nbytes ‖ payload)
//
// Every byte of the file is covered by exactly one CRC32C (the section
// tags are folded into the checksum domain but not written), so any
// single-byte flip or truncation is detected. Fixed-size chunk-record
// framing makes chunks independently verifiable: recovery mode salvages
// every record whose CRC checks out, and the chunk index supports random
// chunk reads without loading the cube (see SimulatedDisk backing files).
//
// ## Durability protocol
//
// SaveCube never touches `path` in place: it writes `path.tmp`, fsyncs,
// closes, then renames over `path` (POSIX rename atomicity). A crash at
// any point leaves either the complete old file or the complete new file.
//
// ## Version 1 compatibility
//
// Files with magic "OLAPCUB1" (no checksums, unframed chunk records) are
// still read. LoadCube detects the version from the magic; SaveOptions
// can still write v1 for compatibility testing. LoadCube rejects unknown
// magics with kInvalidArgument and any corruption with kDataLoss — it
// returns a typed Status on every malformed input, never crashes.

// Number of chunk records inspected/salvaged by a LoadCube call (recovery
// reporting; all zero when loading a v1 file strictly).
struct RecoveryReport {
  int64_t chunks_total = 0;     // Records present in the directory.
  int64_t chunks_salvaged = 0;  // Records decoded with a valid CRC.
  int64_t chunks_dropped = 0;   // Records skipped in recovery mode.
};

struct SaveOptions {
  bool compress = false;
  // fsync before the final rename. Disable only where durability does not
  // matter (benchmarks).
  bool sync = true;
  // 2 writes OLAPCUB2 (checksummed); 1 writes the legacy OLAPCUB1 format,
  // kept so read-compatibility stays tested.
  int format_version = 2;
  Env* env = nullptr;  // nullptr -> Env::Default().
};

struct LoadOptions {
  // Best-effort mode: salvage every chunk whose CRC verifies instead of
  // failing on the first corrupt record. Schema/layout corruption is never
  // recoverable (there is nothing to attach chunks to).
  bool recover = false;
  RecoveryReport* report = nullptr;  // Optional out-param.
  Env* env = nullptr;                // nullptr -> Env::Default().
};

Status SaveCube(const Cube& cube, const std::string& path,
                const SaveOptions& options);
inline Status SaveCube(const Cube& cube, const std::string& path,
                       bool compress = false) {
  SaveOptions options;
  options.compress = compress;
  return SaveCube(cube, path, options);
}

Result<Cube> LoadCube(const std::string& path, const LoadOptions& options);
inline Result<Cube> LoadCube(const std::string& path) {
  return LoadCube(path, LoadOptions{});
}

// LoadCube wrapped in the bounded-backoff retry policy: transient faults
// (kUnavailable, kResourceExhausted) are retried, everything else returns
// immediately. `clock` nullptr -> Clock::Real().
Result<Cube> LoadCubeWithRetry(const std::string& path,
                               const LoadOptions& options,
                               const RetryPolicy& policy,
                               Clock* clock = nullptr);

// Index of the chunk records of an OLAPCUB2 file: enough to fetch and
// CRC-verify one chunk with a single ranged read, without materializing
// the cube. Built by reading only the file's framing (header, schema/
// layout lengths, chunk record headers) — O(num_chunks) small reads.
struct CubeChunkIndex {
  bool compressed = false;
  int64_t cells_per_chunk = 0;
  struct Entry {
    int64_t payload_offset = 0;  // File offset of the record's payload.
    uint32_t nbytes = 0;         // Payload length.
  };
  std::map<ChunkId, Entry> entries;
};

Result<CubeChunkIndex> IndexCubeChunks(Env* env, const std::string& path);

// Reads, CRC-verifies and decodes one indexed chunk. kNotFound if the file
// stores no such chunk; kDataLoss on checksum mismatch.
Result<Chunk> ReadIndexedChunk(RandomAccessFile* file,
                               const CubeChunkIndex& index, ChunkId id);

// Reads chunks [begin, begin + count) with ONE ranged file read covering
// their records, then CRC-verifies and decodes each. The writer emits
// chunk records in ascending id order, so a run of consecutively-stored
// ids is physically contiguous; if the records turn out not to be back to
// back (ids missing in between), this falls back to per-chunk reads —
// the result is the same either way. kNotFound if any id is unstored.
Result<std::vector<Chunk>> ReadIndexedChunkRun(RandomAccessFile* file,
                                               const CubeChunkIndex& index,
                                               ChunkId begin, int count);

// Size of the file at `path`, in bytes (for reporting).
Result<int64_t> FileSize(const std::string& path, Env* env = nullptr);

}  // namespace olap

#endif  // OLAP_STORAGE_CUBE_IO_H_
