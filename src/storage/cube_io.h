#ifndef OLAP_STORAGE_CUBE_IO_H_
#define OLAP_STORAGE_CUBE_IO_H_

#include <string>

#include "common/status.h"
#include "cube/cube.h"

namespace olap {

// Binary persistence for cubes: the full schema (dimensions, hierarchies,
// varying/parameter wiring, member instances with validity sets), the
// chunk layout, and every stored chunk's cells.
//
// Format (little-endian, versioned):
//   magic "OLAPCUB1", a flags word, then schema, layout and chunk
//   sections. With `compress` set, chunk payloads use the ⊥-run-length
//   codec of storage/compression.h — sparse perspective cubes shrink
//   dramatically (see bench_ablation_compression). Not intended for
//   cross-version compatibility — LoadCube rejects unknown layouts.
//
// Example:
//   OLAP_RETURN_IF_ERROR(SaveCube(cube, "/tmp/warehouse.olap"));
//   Result<Cube> loaded = LoadCube("/tmp/warehouse.olap");

Status SaveCube(const Cube& cube, const std::string& path,
                bool compress = false);
Result<Cube> LoadCube(const std::string& path);

// Size of the file SaveCube would produce, in bytes (for reporting).
Result<int64_t> FileSize(const std::string& path);

}  // namespace olap

#endif  // OLAP_STORAGE_CUBE_IO_H_
