#ifndef OLAP_STORAGE_RETRY_H_
#define OLAP_STORAGE_RETRY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/rng.h"
#include "common/status.h"

namespace olap {

// Bounded retry with decorrelated-jitter backoff for transient storage
// faults. Only kUnavailable and kResourceExhausted are retried — a
// kDataLoss or kInvalidArgument will return the same answer however often
// it is asked.
//
// Backoff schedule: with jitter enabled (the default), attempt i sleeps
//   sleep_i = min(max_backoff, uniform(initial_backoff, 3 * sleep_{i-1}))
// with sleep_0 = initial_backoff — the "decorrelated jitter" scheme, which
// keeps concurrent retriers from re-colliding in synchronized waves the
// way pure exponential backoff does. With jitter disabled the legacy
// deterministic schedule initial * multiplier^i (capped) applies.
//
// Sleeps honor a CancellationToken: a cancelled caller stops waiting
// immediately and CallWithRetry returns kCancelled / kDeadlineExceeded
// instead of burning the remaining attempts.
//
// The clock is injected so tests assert the backoff schedule without
// sleeping: CallWithRetry(policy, &fake_clock, op).

struct RetryPolicy {
  int max_attempts = 3;                   // Total attempts, including the first.
  double initial_backoff_seconds = 0.01;  // Sleep before the second attempt.
  double backoff_multiplier = 2.0;        // Used only when jitter is off.
  double max_backoff_seconds = 1.0;
  // Decorrelated jitter (see file comment). Disable for a deterministic
  // exponential schedule.
  bool decorrelated_jitter = true;
  // Seed for the jitter draws; 0 picks a distinct per-call seed from a
  // process-wide sequence (deterministic within a process run). Tests pin
  // a nonzero seed to assert an exact schedule.
  uint64_t jitter_seed = 0;
};

inline bool IsRetriable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual void SleepFor(double seconds) = 0;
  // Sleeps up to `seconds` but wakes early if `cancel` trips; returns true
  // iff the sleep was interrupted. The base implementation ignores the
  // token (one uncancellable full sleep) so fake clocks that only record
  // durations keep working; Clock::Real() waits on the token.
  virtual bool SleepInterruptible(double seconds,
                                  const CancellationToken& cancel) {
    (void)cancel;
    SleepFor(seconds);
    return false;
  }
  // The process-wide wall clock (never null, never deleted).
  static Clock* Real();
};

// Records requested sleeps instead of performing them. Cancellation is
// still observed: an already-tripped token interrupts the (recorded)
// sleep, so retry-cancellation tests run without real waiting.
class FakeClock : public Clock {
 public:
  void SleepFor(double seconds) override { sleeps_.push_back(seconds); }
  bool SleepInterruptible(double seconds,
                          const CancellationToken& cancel) override {
    sleeps_.push_back(seconds);
    return cancel.ShouldStop();
  }
  const std::vector<double>& sleeps() const { return sleeps_; }
  double total_slept() const {
    double total = 0;
    for (double s : sleeps_) total += s;
    return total;
  }

 private:
  std::vector<double> sleeps_;
};

namespace retry_internal {
inline StatusCode CodeOf(const Status& s) { return s.code(); }
template <typename T>
StatusCode CodeOf(const Result<T>& r) {
  return r.ok() ? StatusCode::kOk : r.status().code();
}

// Process-wide seed sequence for jitter_seed == 0: distinct per call,
// reproducible within a run (no wall-clock entropy).
inline uint64_t NextAutoSeed() {
  static std::atomic<uint64_t> counter{0x9e3779b97f4a7c15ULL};
  return counter.fetch_add(0x2545f4914f6cdd1dULL, std::memory_order_relaxed);
}
}  // namespace retry_internal

// Invokes `op` (returning Status or Result<T>) up to policy.max_attempts
// times, sleeping between attempts while the outcome is retriable. Returns
// the first success, the last failure, or the cancellation status if
// `cancel` trips during a backoff sleep.
template <typename F>
auto CallWithRetry(const RetryPolicy& policy, Clock* clock, F&& op,
                   const CancellationToken& cancel = {}) -> decltype(op()) {
  const int max_attempts = std::max(1, policy.max_attempts);
  Rng rng(policy.jitter_seed != 0 ? policy.jitter_seed
                                  : retry_internal::NextAutoSeed());
  double backoff = policy.initial_backoff_seconds;
  double prev_sleep = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    auto outcome = op();
    if (retry_internal::CodeOf(outcome) == StatusCode::kOk ||
        attempt >= max_attempts ||
        !IsRetriable(retry_internal::CodeOf(outcome))) {
      return outcome;
    }
    double sleep = backoff;
    if (policy.decorrelated_jitter) {
      const double lo = policy.initial_backoff_seconds;
      const double hi = std::max(lo, 3.0 * prev_sleep);
      sleep = std::min(policy.max_backoff_seconds,
                       lo + (hi - lo) * rng.NextDouble());
      prev_sleep = sleep;
    } else {
      backoff = std::min(backoff * policy.backoff_multiplier,
                         policy.max_backoff_seconds);
    }
    if (clock->SleepInterruptible(sleep, cancel) || cancel.ShouldStop()) {
      return cancel.Poll("retry backoff");
    }
  }
}

}  // namespace olap

#endif  // OLAP_STORAGE_RETRY_H_
