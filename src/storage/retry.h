#ifndef OLAP_STORAGE_RETRY_H_
#define OLAP_STORAGE_RETRY_H_

#include <algorithm>
#include <vector>

#include "common/status.h"

namespace olap {

// Bounded retry with exponential backoff for transient storage faults.
// Only kUnavailable and kResourceExhausted are retried — a kDataLoss or
// kInvalidArgument will return the same answer however often it is asked.
//
// The clock is injected so tests assert the exact backoff schedule without
// sleeping: CallWithRetry(policy, &fake_clock, op).

struct RetryPolicy {
  int max_attempts = 3;                   // Total attempts, including the first.
  double initial_backoff_seconds = 0.01;  // Sleep before the second attempt.
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
};

inline bool IsRetriable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual void SleepFor(double seconds) = 0;
  // The process-wide wall clock (never null, never deleted).
  static Clock* Real();
};

// Records requested sleeps instead of performing them.
class FakeClock : public Clock {
 public:
  void SleepFor(double seconds) override { sleeps_.push_back(seconds); }
  const std::vector<double>& sleeps() const { return sleeps_; }
  double total_slept() const {
    double total = 0;
    for (double s : sleeps_) total += s;
    return total;
  }

 private:
  std::vector<double> sleeps_;
};

namespace retry_internal {
inline StatusCode CodeOf(const Status& s) { return s.code(); }
template <typename T>
StatusCode CodeOf(const Result<T>& r) {
  return r.ok() ? StatusCode::kOk : r.status().code();
}
}  // namespace retry_internal

// Invokes `op` (returning Status or Result<T>) up to policy.max_attempts
// times, sleeping between attempts while the outcome is retriable. Returns
// the first success or the last failure.
template <typename F>
auto CallWithRetry(const RetryPolicy& policy, Clock* clock, F&& op)
    -> decltype(op()) {
  const int max_attempts = std::max(1, policy.max_attempts);
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    auto outcome = op();
    if (retry_internal::CodeOf(outcome) == StatusCode::kOk ||
        attempt >= max_attempts ||
        !IsRetriable(retry_internal::CodeOf(outcome))) {
      return outcome;
    }
    clock->SleepFor(backoff);
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff_seconds);
  }
}

}  // namespace olap

#endif  // OLAP_STORAGE_RETRY_H_
