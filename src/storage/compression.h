#ifndef OLAP_STORAGE_COMPRESSION_H_
#define OLAP_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cube/chunk.h"

namespace olap {

// Chunk codec addressing the paper's closing open problem ("compression of
// perspective cubes are important open problems", Sec. 8).
//
// Perspective cubes are dominated by ⊥ cells: every dropped instance, every
// moment outside a validity set, every inactive member leaves ⊥ runs. The
// codec run-length-encodes ⊥ runs and stores value runs verbatim:
//
//   repeated records:  u32 null_run   — number of consecutive ⊥ cells
//                      u32 value_run  — number of following raw doubles
//                      f64 x value_run
//
// An all-⊥ chunk compresses to 8 bytes; a dense chunk costs 8 extra bytes
// per value run (typically one run).
std::vector<uint8_t> CompressChunk(const Chunk& chunk);

// Inverse of CompressChunk; `expected_cells` is the chunk's cell count.
Result<Chunk> DecompressChunk(const std::vector<uint8_t>& bytes,
                              int64_t expected_cells);

// Size in bytes of the uncompressed payload (for ratio reporting).
inline int64_t RawChunkBytes(const Chunk& chunk) {
  return chunk.size() * static_cast<int64_t>(sizeof(double));
}

}  // namespace olap

#endif  // OLAP_STORAGE_COMPRESSION_H_
