#ifndef OLAP_STORAGE_LRU_CACHE_H_
#define OLAP_STORAGE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cube/chunk_layout.h"

namespace olap {

// Tracks which chunk ids are resident in a fixed-capacity cache with
// least-recently-used eviction. It stores no chunk payloads — the engine
// keeps data in memory; the cache only decides whether a read is charged
// as a physical I/O (models the paper's 256 MB Essbase cube cache).
class LruChunkCache {
 public:
  // capacity == 0 disables caching (every access misses).
  explicit LruChunkCache(int64_t capacity) : capacity_(capacity) {}

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  // Entries displaced by misses since construction (or the last Clear).
  int64_t evictions() const { return evictions_; }

  // Marks `id` as most recently used. Returns true on a hit (already
  // resident); on a miss inserts it, evicting the LRU entry when full.
  bool Touch(ChunkId id);

  bool Contains(ChunkId id) const { return index_.count(id) > 0; }

  void Clear();

 private:
  int64_t capacity_;
  int64_t evictions_ = 0;
  std::list<ChunkId> entries_;  // Front = most recently used.
  std::unordered_map<ChunkId, std::list<ChunkId>::iterator> index_;
};

}  // namespace olap

#endif  // OLAP_STORAGE_LRU_CACHE_H_
