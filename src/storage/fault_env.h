#ifndef OLAP_STORAGE_FAULT_ENV_H_
#define OLAP_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/env.h"

namespace olap {

// Env decorator that injects storage faults at precise points, for testing
// the durability guarantees of SaveCube/LoadCube and the retry policy.
// Not thread-safe (it is a test harness).
//
// Three fault shapes:
//   * InjectError      — the Nth matching operation returns the given
//                        status; `times` consecutive matches fail, so two
//                        kUnavailable hiccups followed by success exercises
//                        retry, and times=kForever simulates a dead disk.
//   * InjectTornWrite  — the Nth Append persists only a prefix of its
//                        buffer and then fails: a crash mid-write.
//   * InjectBitFlip    — every Read that covers file offset `offset` sees
//                        the byte XOR `mask`: bit rot without touching the
//                        real file.
//
// Example (exactly the acceptance scenario for transient faults):
//   FaultInjectingEnv env(Env::Default());
//   env.InjectError(FaultOp::kOpenRead, /*skip=*/0,
//                   StatusCode::kUnavailable, /*times=*/2);
//   // First two LoadCube attempts fail UNAVAILABLE, the third succeeds.

enum class FaultOp {
  kOpenWrite,
  kOpenRead,
  kAppend,
  kSync,
  kRename,
  kRemove,
  kRead,
};

// Returns a stable name, e.g. "APPEND" (for test diagnostics).
const char* FaultOpName(FaultOp op);

class FaultInjectingEnv : public Env {
 public:
  static constexpr int kForever = -1;

  // `base` must outlive this Env.
  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  // After `skip` unaffected matching operations, fail the next `times`
  // matching operations with `code` (kForever: fail them all).
  void InjectError(FaultOp op, int skip, StatusCode code, int times = 1);

  // After `skip` unaffected Appends, the next Append writes only
  // `fraction` (in [0,1]) of its buffer to the base env, then reports
  // `code`. Every later Append and Sync on any file also fails (the
  // process crashed; nothing further reaches the disk).
  void InjectTornWrite(int skip, double fraction,
                       StatusCode code = StatusCode::kUnavailable);

  // XOR the byte at absolute file offset `offset` with `mask` on every
  // Read through this env (all files opened via NewRandomAccessFile).
  void InjectBitFlip(int64_t offset, uint8_t mask);

  void ClearFaults();

  // Operations observed so far (counted whether or not they failed).
  int64_t op_count(FaultOp op) const;

  // Env:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<int64_t> GetFileSize(const std::string& path) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  struct ErrorFault {
    FaultOp op;
    int skip;
    int times;
    StatusCode code;
  };
  struct TornWrite {
    bool armed = false;
    int skip = 0;
    double fraction = 0.0;
    StatusCode code = StatusCode::kUnavailable;
    bool fired = false;  // After firing, all writes/syncs fail.
  };
  struct BitFlip {
    int64_t offset;
    uint8_t mask;
  };

  // Records the operation and returns the injected status (OK if no fault
  // matches).
  Status OnOp(FaultOp op, const std::string& path);
  // Append interception: returns the number of bytes to pass through
  // (normally n) and sets *injected to the status to report.
  size_t OnAppend(size_t n, Status* injected);
  void ApplyBitFlips(int64_t offset, std::string* data) const;

  Env* base_;
  std::vector<ErrorFault> error_faults_;
  TornWrite torn_;
  std::vector<BitFlip> bit_flips_;
  std::map<FaultOp, int64_t> op_counts_;
};

}  // namespace olap

#endif  // OLAP_STORAGE_FAULT_ENV_H_
