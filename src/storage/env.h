#ifndef OLAP_STORAGE_ENV_H_
#define OLAP_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace olap {

// File-system abstraction in the LevelDB tradition. Every byte the storage
// layer moves to or from disk goes through an Env, so tests can substitute
// a FaultInjectingEnv (storage/fault_env.h) and exercise torn writes,
// transient outages and bit rot without touching real hardware.
//
// Error mapping contract (shared by all implementations):
//   * missing file                       -> kNotFound
//   * out of disk space / quota          -> kResourceExhausted
//   * transient failure, worth a retry   -> kUnavailable
//   * short read / device-level I/O rot  -> kDataLoss
//   * everything else                    -> kInvalidArgument / kInternal

// A sequentially written file. Append/Sync/Close each report failure via
// Status; after a failed Append the file's contents are unspecified (the
// caller must treat the file as garbage — SaveCube does, via its
// temp-file-then-rename protocol).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const void* data, size_t n) = 0;
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  // Flushes library and OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;
  // Idempotent; Append/Sync after Close are errors.
  virtual Status Close() = 0;
};

// A file readable at arbitrary offsets (pread-style; safe for concurrent
// readers).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads exactly `n` bytes at `offset` into *out (replacing its contents).
  // A short read — the file ends before offset+n — is kDataLoss.
  virtual Status Read(int64_t offset, size_t n, std::string* out) const = 0;
  virtual Result<int64_t> Size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  // Creates (truncating) `path` for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  // Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<int64_t> GetFileSize(const std::string& path) = 0;

  // Convenience: reads the whole file into *out through NewRandomAccessFile.
  Status ReadFileToString(const std::string& path, std::string* out);
};

}  // namespace olap

#endif  // OLAP_STORAGE_ENV_H_
