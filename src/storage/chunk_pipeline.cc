#include "storage/chunk_pipeline.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace olap {

namespace {

struct PipelineMetrics {
  Counter* prefetch_issued;
  Counter* prefetch_hits;
  Counter* prefetch_misses;
  Counter* coalesced_reads;
  Gauge* pinned_chunks;
  Histogram* stall_seconds;

  static const PipelineMetrics& Get() {
    static PipelineMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return PipelineMetrics{reg.counter("pipeline.prefetch.issued"),
                             reg.counter("pipeline.prefetch.hits"),
                             reg.counter("pipeline.prefetch.misses"),
                             reg.counter("pipeline.coalesced_reads"),
                             reg.gauge("pipeline.pinned_chunks"),
                             reg.histogram("pipeline.stall_seconds")};
    }();
    return m;
  }
};

int64_t ResolvePinBudget(const ChunkPipelineOptions& options) {
  if (options.pin_budget > 0) return options.pin_budget;
  return std::max<int64_t>(1, options.lookahead);
}

// The window's unissued schedule entries: (chunk id, schedule position)
// pairs in schedule order (an id can appear more than once — a revisit).
// A window never exceeds the lookahead, so linear scans beat a hash map —
// this runs on the consumer thread per delivery and must stay cheap for
// the stall + compute ≈ wall accounting to hold.
using Window = std::vector<std::pair<ChunkId, int64_t>>;

bool WindowHas(const Window& window, ChunkId id) {
  for (const auto& entry : window) {
    if (entry.first == id) return true;
  }
  return false;
}

int64_t SlotsIn(const Window& window, ChunkId lo, ChunkId hi) {
  int64_t n = 0;
  for (const auto& entry : window) {
    if (entry.first >= lo && entry.first <= hi) ++n;
  }
  return n;
}

// Picks the run of adjacent ids to fetch next: the maximal consecutive-id
// interval of `window` around `anchor`, trimmed (keeping the anchor) until
// the number of schedule slots it fills fits `max_slots`. With coalescing
// off the run is just the anchor id.
std::pair<ChunkId, ChunkId> FormRun(const Window& window, ChunkId anchor,
                                    int64_t max_slots, bool coalesce) {
  ChunkId lo = anchor;
  ChunkId hi = anchor;
  if (coalesce) {
    while (WindowHas(window, lo - 1)) --lo;
    while (WindowHas(window, hi + 1)) ++hi;
  }
  while (SlotsIn(window, lo, hi) > max_slots && hi > anchor) --hi;
  while (SlotsIn(window, lo, hi) > max_slots && lo < anchor) ++lo;
  return {lo, hi};
}

}  // namespace

ChunkPipeline::Pin& ChunkPipeline::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    pipeline_ = other.pipeline_;
    id_ = other.id_;
    chunk_ = std::move(other.chunk_);
    other.pipeline_ = nullptr;
  }
  return *this;
}

void ChunkPipeline::Pin::Release() {
  if (pipeline_ == nullptr) return;
  ChunkPipeline* p = pipeline_;
  pipeline_ = nullptr;
  p->ReleaseOne();
}

ChunkPipeline::ChunkPipeline(SimulatedDisk* disk, std::vector<ChunkId> schedule,
                             const ChunkPipelineOptions& options)
    : disk_(disk),
      schedule_(std::move(schedule)),
      cancel_(options.cancel),
      lookahead_(std::max(1, options.lookahead)),
      pin_budget_(ResolvePinBudget(options)),
      io_threads_(std::max(1, options.io_threads)),
      coalesce_(options.coalesce),
      slots_(schedule_.size()) {
  std::lock_guard<std::mutex> lock(mu_);
  MaybeIssueLocked();
}

ChunkPipeline::~ChunkPipeline() {
  std::unique_lock<std::mutex> lock(mu_);
  cancelled_ = true;
  cv_.wait(lock, [this] { return in_flight_batches_ == 0; });
  // Chunks still resident (never delivered, or failed) give their budget
  // back to the process-wide gauge; delivered Pins must already be
  // released (they may not outlive the pipeline).
  if (pinned_ > 0) PipelineMetrics::Get().pinned_chunks->Add(-pinned_);
}

bool ChunkPipeline::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_deliver_ >= static_cast<int64_t>(schedule_.size());
}

ChunkPipelineStats ChunkPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChunkPipeline::ReleaseOne() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  --pinned_;
  metrics.pinned_chunks->Add(-1);
  if (!cancelled_) MaybeIssueLocked();
  cv_.notify_all();
}

// Issues fetch batches until the lookahead window, the pin budget, or the
// io_threads cap stops us. Called with mu_ held, and only from the
// consumer's thread (constructor, Next, Pin release) — never from a pool
// worker — so ReadRun charges land in schedule order on one thread and
// never race on the head position. The runs formed (and hence the seek
// total) can still depend on fetch timing at io_threads > 1; callers that
// need reproducible virtual seconds use ChargeSchedule.
void ChunkPipeline::MaybeIssueLocked() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  // A tripped token stops new I/O at the source; slots already in flight
  // finish or abandon on their own worker.
  if (cancel_.ShouldStop()) return;
  const int64_t n = static_cast<int64_t>(schedule_.size());
  // Head-of-line rescue: a tight budget can fill entirely with prefetched
  // chunks scheduled AFTER a still-unissued head (run formation follows id
  // adjacency, not schedule position). Evict the farthest-ahead ready,
  // undelivered slot — it re-fetches later — so the head can always issue
  // while the consumer holds fewer than pin_budget live Pins. Ready slots
  // only exist inside the current lookahead window (issuance is
  // window-bounded and next_deliver_ never moves back), so the scan is
  // O(lookahead).
  while (pinned_ >= pin_budget_ && in_flight_batches_ == 0 &&
         next_deliver_ < n &&
         slots_[next_deliver_].state == SlotState::kPending) {
    int64_t victim = -1;
    const int64_t window_end = std::min(n, next_deliver_ + lookahead_);
    for (int64_t i = window_end - 1; i > next_deliver_; --i) {
      if (slots_[i].state == SlotState::kReady) {
        victim = i;
        break;
      }
    }
    if (victim < 0) break;  // Budget genuinely held by live Pins.
    slots_[victim].state = SlotState::kPending;
    slots_[victim].chunk = Chunk();
    --pinned_;
    ++stats_.pins_evicted;
    metrics.pinned_chunks->Add(-1);
  }
  while (in_flight_batches_ < io_threads_ && pinned_ < pin_budget_) {
    const int64_t window_end = std::min(n, next_deliver_ + lookahead_);
    // First unissued slot in the window anchors the next batch.
    int64_t anchor_slot = -1;
    window_scratch_.clear();
    for (int64_t i = next_deliver_; i < window_end; ++i) {
      if (slots_[i].state != SlotState::kPending) continue;
      if (anchor_slot < 0) anchor_slot = i;
      window_scratch_.emplace_back(schedule_[i], i);
    }
    if (anchor_slot < 0) return;  // Window fully issued.
    const ChunkId anchor = schedule_[anchor_slot];
    auto [lo, hi] =
        FormRun(window_scratch_, anchor, pin_budget_ - pinned_, coalesce_);
    // Defer short prefetch-ahead runs while other batches are in flight:
    // as deliveries advance the window, more adjacent ids join the run and
    // it issues as one longer ranged read. The schedule head itself
    // (anchor_slot == next_deliver_) always issues — progress never waits
    // on coalescing.
    if (coalesce_ && anchor_slot != next_deliver_ && in_flight_batches_ > 0 &&
        (hi - lo + 1) * 2 < lookahead_) {
      return;
    }

    Batch batch;
    batch.begin = lo;
    batch.count = static_cast<int>(hi - lo + 1);
    batch.slots.resize(batch.count);
    int64_t filled = 0;
    for (const auto& [id, slot] : window_scratch_) {
      if (id < lo || id > hi) continue;
      // A revisited id may exceed the trimmed budget; leave the extra
      // occurrences pending for a later batch.
      if (filled >= pin_budget_ - pinned_) break;
      batch.slots[id - lo].push_back(slot);
      slots_[slot].state = SlotState::kInFlight;
      ++filled;
    }
    if (filled == 0) return;  // Budget exhausted mid-formation.

    // Charge the cost model now, in issue order, on this thread.
    disk_->ReadRun(batch.begin, batch.count);

    pinned_ += filled;
    stats_.peak_pinned = std::max(stats_.peak_pinned, pinned_);
    stats_.prefetch_issued += filled;
    ++stats_.read_batches;
    if (batch.count > 1) ++stats_.coalesced_reads;
    metrics.prefetch_issued->Increment(filled);
    metrics.pinned_chunks->Add(filled);
    if (batch.count > 1) metrics.coalesced_reads->Increment();

    ++in_flight_batches_;
    // std::function needs a copyable target; hand the batch over through a
    // shared_ptr.
    auto shared = std::make_shared<Batch>(std::move(batch));
    ThreadPool::Shared().Schedule(
        [this, shared] { RunBatch(std::move(*shared)); });
  }
}

// Pool-worker half of a fetch batch: one ranged CRC-verified read plus
// decode, then slot fill. No cost-model charging here (done at issue).
void ChunkPipeline::RunBatch(Batch batch) {
  Result<std::vector<Chunk>> data = Status::Internal("fetch batch never ran");
  {
    // The span must close before the batch is published as finished: the
    // destructor's drain (and a subsequent trace harvest) may run the
    // instant in_flight_batches_ hits zero.
    TraceSpan span("pipeline.fetch_batch");
    span.SetDetail("begin=" + std::to_string(batch.begin) +
                   " count=" + std::to_string(batch.count));
    // Abandon cleanly when the query stopped while this batch sat on the
    // pool queue: skip the read, fail the slots with the stop status, and
    // fall through to the normal publication path (in_flight accounting,
    // cv wakeup) so the consumer and destructor see a consistent table.
    const Status stop = cancel_.Poll("pipeline fetch");
    if (stop.ok()) {
      data = disk_->ReadBackingRun(batch.begin, batch.count);
    } else {
      data = stop;
    }
    if (!data.ok()) span.SetError(data.status());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int j = 0; j < batch.count; ++j) {
      for (size_t k = 0; k < batch.slots[j].size(); ++k) {
        Slot& slot = slots_[batch.slots[j][k]];
        if (data.ok()) {
          // Copy for all but the last consumer of this id's payload.
          slot.chunk = (k + 1 < batch.slots[j].size()) ? (*data)[j]
                                                       : std::move((*data)[j]);
          slot.state = SlotState::kReady;
        } else {
          slot.status = data.status();
          slot.state = SlotState::kFailed;
        }
      }
    }
    --in_flight_batches_;
  }
  cv_.notify_all();
}

Result<ChunkPipeline::Pin> ChunkPipeline::Next() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t n = static_cast<int64_t>(schedule_.size());
  if (next_deliver_ >= n) {
    return Status::OutOfRange("chunk pipeline schedule drained");
  }
  {
    Status stop = cancel_.Poll("pipeline");
    if (!stop.ok()) {
      next_deliver_ = n;  // Close: a cancelled schedule never resumes.
      cv_.notify_all();
      return stop;
    }
  }
  MaybeIssueLocked();
  bool stalled = false;
  std::chrono::steady_clock::time_point wait_start;
  while (slots_[next_deliver_].state == SlotState::kPending ||
         slots_[next_deliver_].state == SlotState::kInFlight) {
    if (slots_[next_deliver_].state == SlotState::kPending &&
        in_flight_batches_ == 0) {
      Status stop = cancel_.Poll("pipeline");
      if (!stop.ok()) {  // Cancellation closed the issue path, not pins.
        next_deliver_ = n;
        cv_.notify_all();
        return stop;
      }
      // Nothing in flight and the head of the schedule cannot be issued:
      // every budget slot is held by a live Pin. Waiting would deadlock a
      // single-threaded consumer, so surface the exhaustion instead.
      return Status::ResourceExhausted(
          "chunk pin budget (" + std::to_string(pin_budget_) +
          ") exhausted by held pins before schedule entry " +
          std::to_string(next_deliver_));
    }
    if (!stalled) {
      stalled = true;
      wait_start = std::chrono::steady_clock::now();
    }
    // A sliced wait keeps cancellation latency bounded (~2ms) even when
    // the signal arrives with no fetch completion to ring cv_.
    cv_.wait_for(lock, std::chrono::milliseconds(2));
    Status stop = cancel_.Poll("pipeline");
    if (!stop.ok()) {
      next_deliver_ = n;
      cv_.notify_all();
      return stop;
    }
    MaybeIssueLocked();
  }
  if (stalled) {
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count();
    stats_.stall_seconds += waited;
    ++stats_.stall_waits;
    metrics.prefetch_misses->Increment();
    metrics.stall_seconds->RecordSeconds(waited);
  } else {
    ++stats_.ready_hits;
    metrics.prefetch_hits->Increment();
  }
  Slot& slot = slots_[next_deliver_];
  if (slot.state == SlotState::kFailed) {
    Status failed = slot.status;
    next_deliver_ = n;  // Close the pipeline: the schedule order is broken.
    cv_.notify_all();
    return failed;
  }
  Pin pin;
  pin.pipeline_ = this;
  pin.id_ = schedule_[next_deliver_];
  pin.chunk_ = std::move(slot.chunk);
  slot.state = SlotState::kDelivered;
  ++next_deliver_;
  ++stats_.chunks_delivered;
  MaybeIssueLocked();
  return pin;
}

double ChunkPipeline::ChargeSchedule(SimulatedDisk* disk,
                                     const std::vector<ChunkId>& schedule,
                                     const ChunkPipelineOptions& options) {
  const int lookahead = std::max(1, options.lookahead);
  const int64_t budget = ResolvePinBudget(options);
  const int64_t n = static_cast<int64_t>(schedule.size());
  std::vector<char> done(schedule.size(), 0);
  double total = 0.0;
  int64_t head = 0;
  while (head < n) {
    if (done[head]) {
      ++head;
      continue;
    }
    const int64_t window_end = std::min(n, head + lookahead);
    Window window;
    for (int64_t i = head; i < window_end; ++i) {
      if (!done[i]) window.emplace_back(schedule[i], i);
    }
    auto [lo, hi] =
        FormRun(window, schedule[head], budget, options.coalesce);
    int64_t charged_slots = 0;
    for (const auto& [id, slot] : window) {
      if (id < lo || id > hi) continue;
      if (charged_slots >= budget) break;
      done[slot] = 1;
      ++charged_slots;
    }
    total += disk->ReadRun(lo, static_cast<int>(hi - lo + 1));
  }
  return total;
}

}  // namespace olap
