#include "storage/retry.h"

#include <chrono>
#include <thread>

namespace olap {

namespace {

class RealClock : public Clock {
 public:
  void SleepFor(double seconds) override {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  bool SleepInterruptible(double seconds,
                          const CancellationToken& cancel) override {
    if (seconds <= 0) return cancel.ShouldStop();
    return cancel.WaitFor(seconds);
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* clock = new RealClock;
  return clock;
}

}  // namespace olap
