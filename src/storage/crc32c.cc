#include "storage/crc32c.h"

#include <array>

namespace olap {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial, built once
// at static-init time (256 entries; generation is trivial next to I/O cost).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t l = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    l = table[(l ^ p[i]) & 0xFF] ^ (l >> 8);
  }
  return l ^ 0xFFFFFFFFu;
}

}  // namespace olap
