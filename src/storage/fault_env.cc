#include "storage/fault_env.h"

#include <algorithm>
#include <utility>

namespace olap {

namespace {

Status MakeFaultStatus(StatusCode code, FaultOp op, const std::string& path) {
  return Status(code, std::string("injected fault on ") + FaultOpName(op) +
                          " '" + path + "'");
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpenWrite:
      return "OPEN_WRITE";
    case FaultOp::kOpenRead:
      return "OPEN_READ";
    case FaultOp::kAppend:
      return "APPEND";
    case FaultOp::kSync:
      return "SYNC";
    case FaultOp::kRename:
      return "RENAME";
    case FaultOp::kRemove:
      return "REMOVE";
    case FaultOp::kRead:
      return "READ";
  }
  return "UNKNOWN";
}

// A WritableFile that consults the env before every operation, so faults
// injected after the file was opened still apply.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectingEnv* env,
                    std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Status Append(const void* data, size_t n) override {
    Status injected = env_->OnOp(FaultOp::kAppend, path_);
    if (!injected.ok()) return injected;
    size_t pass = env_->OnAppend(n, &injected);
    if (pass > 0) {
      Status written = base_->Append(data, std::min(pass, n));
      if (!written.ok()) return written;
    }
    return injected;
  }

  Status Sync() override {
    Status injected = env_->OnOp(FaultOp::kSync, path_);
    if (!injected.ok()) return injected;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
  std::string path_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectingEnv* env, std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Status Read(int64_t offset, size_t n, std::string* out) const override {
    Status injected = env_->OnOp(FaultOp::kRead, path_);
    if (!injected.ok()) return injected;
    Status read = base_->Read(offset, n, out);
    if (!read.ok()) return read;
    env_->ApplyBitFlips(offset, out);
    return Status::Ok();
  }

  Result<int64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectingEnv* env_;
  std::string path_;
};

void FaultInjectingEnv::InjectError(FaultOp op, int skip, StatusCode code,
                                    int times) {
  error_faults_.push_back(ErrorFault{op, skip, times, code});
}

void FaultInjectingEnv::InjectTornWrite(int skip, double fraction,
                                        StatusCode code) {
  torn_.armed = true;
  torn_.skip = skip;
  torn_.fraction = std::clamp(fraction, 0.0, 1.0);
  torn_.code = code;
  torn_.fired = false;
}

void FaultInjectingEnv::InjectBitFlip(int64_t offset, uint8_t mask) {
  bit_flips_.push_back(BitFlip{offset, mask});
}

void FaultInjectingEnv::ClearFaults() {
  error_faults_.clear();
  torn_ = TornWrite{};
  bit_flips_.clear();
}

int64_t FaultInjectingEnv::op_count(FaultOp op) const {
  auto it = op_counts_.find(op);
  return it == op_counts_.end() ? 0 : it->second;
}

Status FaultInjectingEnv::OnOp(FaultOp op, const std::string& path) {
  ++op_counts_[op];
  // A fired torn write means the process is "dead": nothing else reaches
  // the disk.
  if (torn_.fired && (op == FaultOp::kAppend || op == FaultOp::kSync ||
                      op == FaultOp::kRename)) {
    return MakeFaultStatus(torn_.code, op, path);
  }
  for (ErrorFault& fault : error_faults_) {
    if (fault.op != op || fault.times == 0) continue;
    if (fault.skip > 0) {
      --fault.skip;
      continue;
    }
    if (fault.times > 0) --fault.times;
    return MakeFaultStatus(fault.code, op, path);
  }
  return Status::Ok();
}

size_t FaultInjectingEnv::OnAppend(size_t n, Status* injected) {
  *injected = Status::Ok();
  if (!torn_.armed || torn_.fired) return n;
  if (torn_.skip > 0) {
    --torn_.skip;
    return n;
  }
  torn_.fired = true;
  *injected = Status(torn_.code, "injected torn write");
  return static_cast<size_t>(static_cast<double>(n) * torn_.fraction);
}

void FaultInjectingEnv::ApplyBitFlips(int64_t offset, std::string* data) const {
  for (const BitFlip& flip : bit_flips_) {
    if (flip.offset >= offset &&
        flip.offset < offset + static_cast<int64_t>(data->size())) {
      (*data)[static_cast<size_t>(flip.offset - offset)] ^=
          static_cast<char>(flip.mask);
    }
  }
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  Status injected = OnOp(FaultOp::kOpenWrite, path);
  if (!injected.ok()) return injected;
  Result<std::unique_ptr<WritableFile>> base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(*std::move(base), this, path));
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectingEnv::NewRandomAccessFile(
    const std::string& path) {
  Status injected = OnOp(FaultOp::kOpenRead, path);
  if (!injected.ok()) return injected;
  Result<std::unique_ptr<RandomAccessFile>> base =
      base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      new FaultRandomAccessFile(*std::move(base), this, path));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  Status injected = OnOp(FaultOp::kRename, from);
  if (!injected.ok()) return injected;
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  Status injected = OnOp(FaultOp::kRemove, path);
  if (!injected.ok()) return injected;
  return base_->RemoveFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<int64_t> FaultInjectingEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

}  // namespace olap
