#include "storage/env.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace olap {

namespace {

Status ErrnoStatus(const std::string& context, int err) {
  std::string msg = context + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(std::move(msg));
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::ResourceExhausted(std::move(msg));
    case EAGAIN:
    case EBUSY:
      return Status::Unavailable(std::move(msg));
    case EIO:
      return Status::DataLoss(std::move(msg));
    default:
      return Status::InvalidArgument(std::move(msg));
  }
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    if (fd_ < 0) return Status::FailedPrecondition("append to closed file");
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write '" + path_ + "'", errno);
      }
      p += written;
      n -= static_cast<size_t>(written);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("sync of closed file");
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync '" + path_ + "'", errno);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close '" + path_ + "'", errno);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(int64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    char* p = out->data();
    size_t remaining = n;
    int64_t at = offset;
    while (remaining > 0) {
      ssize_t got = ::pread(fd_, p, remaining, static_cast<off_t>(at));
      if (got < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("read '" + path_ + "'", errno);
      }
      if (got == 0) {
        return Status::DataLoss("short read of '" + path_ + "': wanted " +
                                std::to_string(n) + " bytes at offset " +
                                std::to_string(offset));
      }
      p += got;
      remaining -= static_cast<size_t>(got);
      at += got;
    }
    return Status::Ok();
  }

  Result<int64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("stat '" + path_ + "'", errno);
    return static_cast<int64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open '" + path + "' for writing", errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open '" + path + "'", errno);
    return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(fd, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename '" + from + "' -> '" + to + "'", errno);
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("remove '" + path + "'", errno);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<int64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat '" + path + "'", errno);
    }
    return static_cast<int64_t>(st.st_size);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  Result<std::unique_ptr<RandomAccessFile>> file = NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  Result<int64_t> size = (*file)->Size();
  if (!size.ok()) return size.status();
  return (*file)->Read(0, static_cast<size_t>(*size), out);
}

}  // namespace olap
