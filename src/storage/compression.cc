#include "storage/compression.h"

#include <cstring>

namespace olap {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
              reinterpret_cast<const uint8_t*>(&v) + 4);
}

}  // namespace

std::vector<uint8_t> CompressChunk(const Chunk& chunk) {
  std::vector<uint8_t> out;
  // Run detection walks the validity bitmap a word at a time (FindNext /
  // FindNextUnset) and value runs append with one bulk memcpy from the
  // dense value array — no per-cell sentinel tests. The byte stream is
  // unchanged from the per-cell encoder.
  const DynamicBitset& bits = chunk.NullBits();
  const double* vals = chunk.ValuesSpan();
  int64_t i = 0;
  const int64_t n = chunk.size();
  while (i < n) {
    const int64_t null_start = i;
    const int next_set = bits.FindNext(static_cast<int>(i));
    const int64_t value_start = next_set < 0 ? n : next_set;
    const int64_t value_end =
        value_start >= n ? n : bits.FindNextUnset(static_cast<int>(value_start));
    PutU32(&out, static_cast<uint32_t>(value_start - null_start));
    PutU32(&out, static_cast<uint32_t>(value_end - value_start));
    if (value_end > value_start) {
      const size_t old_size = out.size();
      const size_t run_bytes =
          static_cast<size_t>(value_end - value_start) * sizeof(double);
      out.resize(old_size + run_bytes);
      std::memcpy(out.data() + old_size, vals + value_start, run_bytes);
    }
    i = value_end;
  }
  return out;
}

Result<Chunk> DecompressChunk(const std::vector<uint8_t>& bytes,
                              int64_t expected_cells) {
  Chunk chunk(expected_cells);
  size_t pos = 0;
  int64_t cell = 0;
  auto read_u32 = [&](uint32_t* v) {
    if (pos + 4 > bytes.size()) return false;
    std::memcpy(v, bytes.data() + pos, 4);
    pos += 4;
    return true;
  };
  std::vector<double> scratch;  // Aligned staging for bulk run decodes.
  while (pos < bytes.size()) {
    uint32_t null_run = 0, value_run = 0;
    if (!read_u32(&null_run) || !read_u32(&value_run)) {
      return Status::InvalidArgument("truncated compressed chunk header");
    }
    cell += null_run;  // ⊥ cells are the chunk's default state.
    if (cell + value_run > expected_cells ||
        pos + static_cast<size_t>(value_run) * 8 > bytes.size()) {
      return Status::InvalidArgument("compressed chunk overruns cell count");
    }
    if (value_run > 0) {
      // Bulk-assign the whole value run; NaN payload doubles decode as ⊥
      // exactly like the old per-cell CellValue canonicalisation.
      scratch.resize(value_run);
      std::memcpy(scratch.data(), bytes.data() + pos,
                  static_cast<size_t>(value_run) * 8);
      pos += static_cast<size_t>(value_run) * 8;
      chunk.AssignRunFromSentinel(cell, scratch.data(), value_run);
      cell += value_run;
    }
  }
  if (cell > expected_cells) {
    return Status::InvalidArgument("compressed chunk too long");
  }
  return chunk;
}

}  // namespace olap
