#include "storage/compression.h"

#include <cstring>

namespace olap {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
              reinterpret_cast<const uint8_t*>(&v) + 4);
}

void PutF64(std::vector<uint8_t>* out, double v) {
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
              reinterpret_cast<const uint8_t*>(&v) + 8);
}

}  // namespace

std::vector<uint8_t> CompressChunk(const Chunk& chunk) {
  std::vector<uint8_t> out;
  int64_t i = 0;
  const int64_t n = chunk.size();
  while (i < n) {
    int64_t null_start = i;
    while (i < n && chunk.Get(i).is_null()) ++i;
    int64_t value_start = i;
    while (i < n && !chunk.Get(i).is_null()) ++i;
    PutU32(&out, static_cast<uint32_t>(value_start - null_start));
    PutU32(&out, static_cast<uint32_t>(i - value_start));
    for (int64_t j = value_start; j < i; ++j) {
      PutF64(&out, chunk.Get(j).value());
    }
  }
  return out;
}

Result<Chunk> DecompressChunk(const std::vector<uint8_t>& bytes,
                              int64_t expected_cells) {
  Chunk chunk(expected_cells);
  size_t pos = 0;
  int64_t cell = 0;
  auto read_u32 = [&](uint32_t* v) {
    if (pos + 4 > bytes.size()) return false;
    std::memcpy(v, bytes.data() + pos, 4);
    pos += 4;
    return true;
  };
  while (pos < bytes.size()) {
    uint32_t null_run = 0, value_run = 0;
    if (!read_u32(&null_run) || !read_u32(&value_run)) {
      return Status::InvalidArgument("truncated compressed chunk header");
    }
    cell += null_run;  // ⊥ cells are the chunk's default state.
    if (cell + value_run > expected_cells ||
        pos + static_cast<size_t>(value_run) * 8 > bytes.size()) {
      return Status::InvalidArgument("compressed chunk overruns cell count");
    }
    for (uint32_t j = 0; j < value_run; ++j) {
      double v;
      std::memcpy(&v, bytes.data() + pos, 8);
      pos += 8;
      chunk.Set(cell++, CellValue(v));
    }
  }
  if (cell > expected_cells) {
    return Status::InvalidArgument("compressed chunk too long");
  }
  return chunk;
}

}  // namespace olap
