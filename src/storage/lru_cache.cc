#include "storage/lru_cache.h"

namespace olap {

bool LruChunkCache::Touch(ChunkId id) {
  if (capacity_ <= 0) return false;
  auto it = index_.find(id);
  if (it != index_.end()) {
    entries_.splice(entries_.begin(), entries_, it->second);
    return true;
  }
  if (size() >= capacity_) {
    index_.erase(entries_.back());
    entries_.pop_back();
    ++evictions_;
  }
  entries_.push_front(id);
  index_[id] = entries_.begin();
  return false;
}

void LruChunkCache::Clear() {
  entries_.clear();
  index_.clear();
  evictions_ = 0;
}

}  // namespace olap
