#include "storage/simulated_disk.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"

namespace olap {

namespace {

struct DiskMetrics {
  Counter* physical_reads;
  Counter* cache_hits;
  Counter* evictions;
  Counter* seek_chunks;
  Counter* coalesced_reads;

  static const DiskMetrics& Get() {
    static DiskMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return DiskMetrics{reg.counter("disk.reads.physical"),
                         reg.counter("disk.reads.cache_hits"),
                         reg.counter("disk.cache.evictions"),
                         reg.counter("disk.seek_chunks"),
                         reg.counter("disk.coalesced_reads")};
    }();
    return m;
  }
};

}  // namespace

SimulatedDisk::StatStripe& SimulatedDisk::LocalStripe() {
  // One stripe per thread (hashed): a charging thread always lands on the
  // same stripe, so serial and pipeline-issued charges keep the exact
  // accumulation order the single-mutex implementation had.
  static thread_local size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[slot % kStatStripes];
}

void SimulatedDisk::AddSeconds(std::atomic<double>* slot, double delta) {
  double seen = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(seen, seen + delta,
                                      std::memory_order_relaxed)) {
  }
}

double SimulatedDisk::ReadChunk(ChunkId id) {
  const DiskMetrics& metrics = DiskMetrics::Get();
  StatStripe& stripe = LocalStripe();
  int64_t distance;
  int64_t evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t evictions_before = cache_.evictions();
    if (cache_.Touch(id)) {
      stripe.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics.cache_hits->Increment();
      return 0.0;
    }
    evicted = cache_.evictions() - evictions_before;
    distance = std::llabs(id - head_);
    head_ = id;
  }
  const double seek =
      std::min(model_.seek_seconds_per_chunk * static_cast<double>(distance),
               model_.max_seek_seconds);
  const double cost = seek + model_.transfer_seconds;
  stripe.physical_reads.fetch_add(1, std::memory_order_relaxed);
  stripe.seek_chunks.fetch_add(distance, std::memory_order_relaxed);
  if (evicted > 0) {
    stripe.evictions.fetch_add(evicted, std::memory_order_relaxed);
    metrics.evictions->Increment(evicted);
  }
  AddSeconds(&stripe.virtual_seconds, cost);
  metrics.physical_reads->Increment();
  metrics.seek_chunks->Increment(distance);
  return cost;
}

double SimulatedDisk::ReadRun(ChunkId begin, int count) {
  if (count <= 0) return 0.0;
  if (count == 1) return ReadChunk(begin);
  const DiskMetrics& metrics = DiskMetrics::Get();
  StatStripe& stripe = LocalStripe();
  int64_t misses = 0;
  int64_t hits = 0;
  int64_t evicted = 0;
  int64_t distance = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t evictions_before = cache_.evictions();
    ChunkId first_miss = begin;
    ChunkId last_miss = begin;
    for (int i = 0; i < count; ++i) {
      const ChunkId id = begin + i;
      if (cache_.Touch(id)) {
        ++hits;
        continue;
      }
      if (misses == 0) first_miss = id;
      last_miss = id;
      ++misses;
    }
    evicted = cache_.evictions() - evictions_before;
    if (misses > 0) {
      distance = std::llabs(first_miss - head_);
      head_ = last_miss;
    }
  }
  if (hits > 0) {
    stripe.cache_hits.fetch_add(hits, std::memory_order_relaxed);
    metrics.cache_hits->Increment(hits);
  }
  if (evicted > 0) {
    stripe.evictions.fetch_add(evicted, std::memory_order_relaxed);
    metrics.evictions->Increment(evicted);
  }
  if (misses == 0) return 0.0;
  // One contiguous I/O: a single seek to the run's first miss, then the
  // transfer of every missed chunk while the head sweeps forward.
  const double seek =
      std::min(model_.seek_seconds_per_chunk * static_cast<double>(distance),
               model_.max_seek_seconds);
  const double cost =
      seek + model_.transfer_seconds * static_cast<double>(misses);
  stripe.physical_reads.fetch_add(misses, std::memory_order_relaxed);
  stripe.seek_chunks.fetch_add(distance, std::memory_order_relaxed);
  stripe.coalesced_reads.fetch_add(1, std::memory_order_relaxed);
  AddSeconds(&stripe.virtual_seconds, cost);
  metrics.physical_reads->Increment(misses);
  metrics.seek_chunks->Increment(distance);
  metrics.coalesced_reads->Increment();
  return cost;
}

IoStats SimulatedDisk::stats() const {
  IoStats total;
  for (const StatStripe& s : stripes_) {
    total.physical_reads += s.physical_reads.load(std::memory_order_relaxed);
    total.cache_hits += s.cache_hits.load(std::memory_order_relaxed);
    total.evictions += s.evictions.load(std::memory_order_relaxed);
    total.total_seek_chunks += s.seek_chunks.load(std::memory_order_relaxed);
    total.coalesced_reads += s.coalesced_reads.load(std::memory_order_relaxed);
    total.virtual_seconds += s.virtual_seconds.load(std::memory_order_relaxed);
  }
  return total;
}

void SimulatedDisk::ResetStats() {
  for (StatStripe& s : stripes_) {
    s.physical_reads.store(0, std::memory_order_relaxed);
    s.cache_hits.store(0, std::memory_order_relaxed);
    s.evictions.store(0, std::memory_order_relaxed);
    s.seek_chunks.store(0, std::memory_order_relaxed);
    s.coalesced_reads.store(0, std::memory_order_relaxed);
    s.virtual_seconds.store(0.0, std::memory_order_relaxed);
  }
}

void SimulatedDisk::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Clear();
    head_ = 0;
  }
  ResetStats();
}

Status SimulatedDisk::AttachBackingFile(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  Result<CubeChunkIndex> index = IndexCubeChunks(env, path);
  if (!index.ok()) return index.status();
  Result<std::unique_ptr<RandomAccessFile>> file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  backing_index_ = *std::move(index);
  backing_file_ = *std::move(file);
  return Status::Ok();
}

Result<Chunk> SimulatedDisk::FetchChunk(ChunkId id) {
  TraceSpan span("disk.fetch_chunk");
  if (backing_file_ == nullptr) {
    Status status = Status::FailedPrecondition("no backing file attached");
    span.SetError(status);
    return status;
  }
  ReadChunk(id);  // Charge the cost model (cache hit => no physical read).
  // The actual read runs outside the accounting mutex: the backing file is
  // positional (pread), so concurrent fetches do not interleave state.
  Result<Chunk> chunk = ReadIndexedChunk(backing_file_.get(), backing_index_, id);
  if (!chunk.ok()) {
    static Counter* failures =
        MetricsRegistry::Global().counter("disk.fetch_failures");
    failures->Increment();
    span.SetError(chunk.status());
  }
  return chunk;
}

Result<std::vector<Chunk>> SimulatedDisk::ReadBackingRun(ChunkId begin,
                                                         int count) const {
  if (backing_file_ == nullptr) {
    return Status::FailedPrecondition("no backing file attached");
  }
  Result<std::vector<Chunk>> chunks =
      ReadIndexedChunkRun(backing_file_.get(), backing_index_, begin, count);
  if (!chunks.ok()) {
    static Counter* failures =
        MetricsRegistry::Global().counter("disk.fetch_failures");
    failures->Increment();
  }
  return chunks;
}

Result<std::vector<Chunk>> SimulatedDisk::FetchRun(ChunkId begin, int count) {
  TraceSpan span("disk.fetch_run");
  span.SetDetail("begin=" + std::to_string(begin) +
                 " count=" + std::to_string(count));
  if (backing_file_ == nullptr) {
    Status status = Status::FailedPrecondition("no backing file attached");
    span.SetError(status);
    return status;
  }
  ReadRun(begin, count);
  Result<std::vector<Chunk>> chunks = ReadBackingRun(begin, count);
  if (!chunks.ok()) span.SetError(chunks.status());
  return chunks;
}

}  // namespace olap
