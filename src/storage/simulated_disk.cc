#include "storage/simulated_disk.h"

#include <algorithm>
#include <cstdlib>

#include "common/metrics.h"
#include "common/trace.h"

namespace olap {

namespace {

struct DiskMetrics {
  Counter* physical_reads;
  Counter* cache_hits;
  Counter* evictions;
  Counter* seek_chunks;

  static const DiskMetrics& Get() {
    static DiskMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return DiskMetrics{reg.counter("disk.reads.physical"),
                         reg.counter("disk.reads.cache_hits"),
                         reg.counter("disk.cache.evictions"),
                         reg.counter("disk.seek_chunks")};
    }();
    return m;
  }
};

}  // namespace

double SimulatedDisk::ReadChunk(ChunkId id) {
  const DiskMetrics& metrics = DiskMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t evictions_before = cache_.evictions();
  if (cache_.Touch(id)) {
    ++stats_.cache_hits;
    metrics.cache_hits->Increment();
    return 0.0;
  }
  const int64_t evicted = cache_.evictions() - evictions_before;
  stats_.evictions += evicted;
  if (evicted > 0) metrics.evictions->Increment(evicted);
  int64_t distance = std::llabs(id - head_);
  double seek =
      std::min(model_.seek_seconds_per_chunk * static_cast<double>(distance),
               model_.max_seek_seconds);
  double cost = seek + model_.transfer_seconds;
  head_ = id;
  ++stats_.physical_reads;
  stats_.total_seek_chunks += distance;
  stats_.virtual_seconds += cost;
  metrics.physical_reads->Increment();
  metrics.seek_chunks->Increment(distance);
  return cost;
}

void SimulatedDisk::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
  head_ = 0;
  stats_ = IoStats{};
}

Status SimulatedDisk::AttachBackingFile(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  Result<CubeChunkIndex> index = IndexCubeChunks(env, path);
  if (!index.ok()) return index.status();
  Result<std::unique_ptr<RandomAccessFile>> file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  backing_index_ = *std::move(index);
  backing_file_ = *std::move(file);
  return Status::Ok();
}

Result<Chunk> SimulatedDisk::FetchChunk(ChunkId id) {
  TraceSpan span("disk.fetch_chunk");
  if (backing_file_ == nullptr) {
    Status status = Status::FailedPrecondition("no backing file attached");
    span.SetError(status);
    return status;
  }
  ReadChunk(id);  // Charge the cost model (cache hit => no physical read).
  // The actual read runs outside the accounting mutex: the backing file is
  // positional (pread), so concurrent fetches do not interleave state.
  Result<Chunk> chunk = ReadIndexedChunk(backing_file_.get(), backing_index_, id);
  if (!chunk.ok()) {
    static Counter* failures =
        MetricsRegistry::Global().counter("disk.fetch_failures");
    failures->Increment();
    span.SetError(chunk.status());
  }
  return chunk;
}

}  // namespace olap
