#include "storage/simulated_disk.h"

#include <algorithm>
#include <cstdlib>

namespace olap {

double SimulatedDisk::ReadChunk(ChunkId id) {
  if (cache_.Touch(id)) {
    ++stats_.cache_hits;
    return 0.0;
  }
  int64_t distance = std::llabs(id - head_);
  double seek =
      std::min(model_.seek_seconds_per_chunk * static_cast<double>(distance),
               model_.max_seek_seconds);
  double cost = seek + model_.transfer_seconds;
  head_ = id;
  ++stats_.physical_reads;
  stats_.total_seek_chunks += distance;
  stats_.virtual_seconds += cost;
  return cost;
}

void SimulatedDisk::Reset() {
  cache_.Clear();
  head_ = 0;
  stats_ = IoStats{};
}

Status SimulatedDisk::AttachBackingFile(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  Result<CubeChunkIndex> index = IndexCubeChunks(env, path);
  if (!index.ok()) return index.status();
  Result<std::unique_ptr<RandomAccessFile>> file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  backing_index_ = *std::move(index);
  backing_file_ = *std::move(file);
  return Status::Ok();
}

Result<Chunk> SimulatedDisk::FetchChunk(ChunkId id) {
  if (backing_file_ == nullptr) {
    return Status::FailedPrecondition("no backing file attached");
  }
  ReadChunk(id);  // Charge the cost model (cache hit => no physical read).
  return ReadIndexedChunk(backing_file_.get(), backing_index_, id);
}

}  // namespace olap
