#include "cube/chunk_layout.h"

#include <algorithm>
#include <cassert>

namespace olap {

ChunkLayout::ChunkLayout(std::vector<int> extents, std::vector<int> chunk_sizes)
    : extents_(std::move(extents)), chunk_sizes_(std::move(chunk_sizes)) {
  assert(extents_.size() == chunk_sizes_.size());
  chunks_per_dim_.resize(extents_.size());
  num_chunks_ = 1;
  cells_per_chunk_ = 1;
  for (size_t d = 0; d < extents_.size(); ++d) {
    assert(extents_[d] > 0);
    chunk_sizes_[d] = std::clamp(chunk_sizes_[d], 1, extents_[d]);
    chunks_per_dim_[d] = (extents_[d] + chunk_sizes_[d] - 1) / chunk_sizes_[d];
    num_chunks_ *= chunks_per_dim_[d];
    cells_per_chunk_ *= chunk_sizes_[d];
  }
}

ChunkLayout ChunkLayout::Uniform(std::vector<int> extents, int chunk_size) {
  std::vector<int> sizes(extents.size(), chunk_size);
  return ChunkLayout(std::move(extents), std::move(sizes));
}

int64_t ChunkLayout::num_cells() const {
  int64_t n = 1;
  for (int e : extents_) n *= e;
  return n;
}

ChunkId ChunkLayout::ChunkOf(const std::vector<int>& coords) const {
  assert(static_cast<int>(coords.size()) == num_dims());
  ChunkId id = 0;
  for (int d = 0; d < num_dims(); ++d) {
    assert(coords[d] >= 0 && coords[d] < extents_[d]);
    id = id * chunks_per_dim_[d] + coords[d] / chunk_sizes_[d];
  }
  return id;
}

int64_t ChunkLayout::OffsetInChunk(const std::vector<int>& coords) const {
  int64_t off = 0;
  for (int d = 0; d < num_dims(); ++d) {
    off = off * chunk_sizes_[d] + coords[d] % chunk_sizes_[d];
  }
  return off;
}

std::vector<int> ChunkLayout::ChunkCoords(ChunkId id) const {
  std::vector<int> cc(num_dims());
  for (int d = num_dims() - 1; d >= 0; --d) {
    cc[d] = static_cast<int>(id % chunks_per_dim_[d]);
    id /= chunks_per_dim_[d];
  }
  return cc;
}

ChunkId ChunkLayout::ChunkIdAt(const std::vector<int>& chunk_coords) const {
  ChunkId id = 0;
  for (int d = 0; d < num_dims(); ++d) {
    assert(chunk_coords[d] >= 0 && chunk_coords[d] < chunks_per_dim_[d]);
    id = id * chunks_per_dim_[d] + chunk_coords[d];
  }
  return id;
}

std::vector<int> ChunkLayout::ChunkBase(ChunkId id) const {
  std::vector<int> cc = ChunkCoords(id);
  for (int d = 0; d < num_dims(); ++d) cc[d] *= chunk_sizes_[d];
  return cc;
}

int ChunkLayout::InExtentSize(ChunkId id, int dim) const {
  assert(dim >= 0 && dim < num_dims());
  for (int d = num_dims() - 1; d > dim; --d) id /= chunks_per_dim_[d];
  const int base =
      static_cast<int>(id % chunks_per_dim_[dim]) * chunk_sizes_[dim];
  return std::min(chunk_sizes_[dim], extents_[dim] - base);
}

}  // namespace olap
