#include "cube/chunk.h"

#include <cassert>
#include <cstring>
#include <limits>
#include <new>

#include "agg/kernels.h"

namespace olap {

Chunk::AlignedValues Chunk::AllocValues(int64_t n) {
  if (n == 0) return nullptr;
  return AlignedValues(static_cast<double*>(::operator new[](
      static_cast<size_t>(n) * sizeof(double), std::align_val_t{64})));
}

Chunk::Chunk(int64_t num_cells)
    : size_(num_cells),
      values_(AllocValues(num_cells)),
      // DynamicBitset addresses bits with int; chunk tiles are small (a few
      // thousand cells), far below that limit.
      nonnull_((assert(num_cells <= std::numeric_limits<int>::max()),
                static_cast<int>(num_cells))) {
  if (size_ > 0) {
    std::memset(values_.get(), 0, static_cast<size_t>(size_) * sizeof(double));
  }
}

Chunk::Chunk(const Chunk& other)
    : size_(other.size_),
      values_(AllocValues(other.size_)),
      nonnull_(other.nonnull_) {
  if (size_ > 0) {
    std::memcpy(values_.get(), other.values_.get(),
                static_cast<size_t>(size_) * sizeof(double));
  }
}

Chunk& Chunk::operator=(const Chunk& other) {
  if (this == &other) return *this;
  if (size_ != other.size_) {
    values_ = AllocValues(other.size_);
    size_ = other.size_;
  }
  if (size_ > 0) {
    std::memcpy(values_.get(), other.values_.get(),
                static_cast<size_t>(size_) * sizeof(double));
  }
  nonnull_ = other.nonnull_;
  return *this;
}

int64_t Chunk::CountNonNull() const { return nonnull_.Count(); }

void Chunk::AccumulateFrom(const Chunk& other) {
  assert(size() == other.size());
  other.nonnull_.ForEachSetBit([&](int i) {
    if (nonnull_.Test(i)) {
      values_[i] += other.values_[i];
    } else {
      values_[i] = other.values_[i];
      nonnull_.Set(i);
    }
  });
}

bool Chunk::RunHasNonNull(int64_t offset, int64_t len) const {
  assert(offset >= 0 && offset + len <= size());
  return kernels::AnyBitInRange(nonnull_.words(), offset, len);
}

int64_t Chunk::CopyRunFrom(const Chunk& src, int64_t src_offset,
                           int64_t dst_offset, int64_t len) {
  assert(src_offset >= 0 && src_offset + len <= src.size());
  assert(dst_offset >= 0 && dst_offset + len <= size());
  return kernels::CopyRunMasked(src.values_.get() + src_offset,
                                src.nonnull_.words(), src_offset,
                                values_.get() + dst_offset,
                                nonnull_.mutable_words(), dst_offset, len);
}

int64_t Chunk::MergeNonNullFrom(const Chunk& other) {
  assert(size() == other.size());
  return CopyRunFrom(other, 0, 0, size());
}

void Chunk::FillSentinel(double* out) const {
  kernels::ExpandToSentinel(values_.get(), nonnull_.words(), 0, out, size_);
}

int64_t Chunk::AssignRunFromSentinel(int64_t offset, const double* raw,
                                     int64_t len) {
  assert(offset >= 0 && offset + len <= size());
  assert(!kernels::AnyBitInRange(nonnull_.words(), offset, len));
  return kernels::DecodeSentinelRun(raw, values_.get() + offset,
                                    nonnull_.mutable_words(), offset, len);
}

}  // namespace olap
