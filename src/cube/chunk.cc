#include "cube/chunk.h"

#include <cassert>

namespace olap {

int64_t Chunk::CountNonNull() const {
  int64_t n = 0;
  for (double raw : cells_) {
    if (!CellValue::FromStorage(raw).is_null()) ++n;
  }
  return n;
}

void Chunk::AccumulateFrom(const Chunk& other) {
  assert(size() == other.size());
  for (int64_t i = 0; i < size(); ++i) {
    CellValue sum = Get(i) + other.Get(i);
    Set(i, sum);
  }
}

}  // namespace olap
