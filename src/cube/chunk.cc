#include "cube/chunk.h"

#include <cassert>

namespace olap {

int64_t Chunk::CountNonNull() const {
  int64_t n = 0;
  for (double raw : cells_) {
    if (!CellValue::FromStorage(raw).is_null()) ++n;
  }
  return n;
}

void Chunk::AccumulateFrom(const Chunk& other) {
  assert(size() == other.size());
  for (int64_t i = 0; i < size(); ++i) {
    CellValue sum = Get(i) + other.Get(i);
    Set(i, sum);
  }
}

bool Chunk::RunHasNonNull(int64_t offset, int64_t len) const {
  assert(offset >= 0 && offset + len <= size());
  const double* p = cells_.data() + offset;
  for (int64_t i = 0; i < len; ++i) {
    if (!CellValue::FromStorage(p[i]).is_null()) return true;
  }
  return false;
}

int64_t Chunk::CopyRunFrom(const Chunk& src, int64_t src_offset,
                           int64_t dst_offset, int64_t len) {
  assert(src_offset >= 0 && src_offset + len <= src.size());
  assert(dst_offset >= 0 && dst_offset + len <= size());
  const double* from = src.cells_.data() + src_offset;
  double* to = cells_.data() + dst_offset;
  int64_t copied = 0;
  for (int64_t i = 0; i < len; ++i) {
    if (CellValue::FromStorage(from[i]).is_null()) continue;
    to[i] = from[i];
    ++copied;
  }
  return copied;
}

int64_t Chunk::MergeNonNullFrom(const Chunk& other) {
  assert(size() == other.size());
  return CopyRunFrom(other, 0, 0, size());
}

}  // namespace olap
