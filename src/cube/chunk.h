#ifndef OLAP_CUBE_CHUNK_H_
#define OLAP_CUBE_CHUNK_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace olap {

// One dense tile of a chunked multidimensional array. Cells are stored as
// raw doubles with CellValue's ⊥ encoding; a freshly created chunk is
// all-⊥.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(int64_t num_cells)
      : cells_(num_cells, CellValue::NullStorage()) {}

  int64_t size() const { return static_cast<int64_t>(cells_.size()); }

  CellValue Get(int64_t offset) const {
    return CellValue::FromStorage(cells_[offset]);
  }
  void Set(int64_t offset, CellValue v) { cells_[offset] = CellValue::ToStorage(v); }

  // Number of non-⊥ cells.
  int64_t CountNonNull() const;

  // Adds every non-⊥ cell of `other` into this chunk (⊥-skipping addition);
  // both chunks must have the same size. Used when merging the sub-cubes of
  // related member instances (Sec. 5.1).
  void AccumulateFrom(const Chunk& other);

 private:
  std::vector<double> cells_;
};

}  // namespace olap

#endif  // OLAP_CUBE_CHUNK_H_
