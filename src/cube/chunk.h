#ifndef OLAP_CUBE_CHUNK_H_
#define OLAP_CUBE_CHUNK_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace olap {

// One dense tile of a chunked multidimensional array. Cells are stored as
// raw doubles with CellValue's ⊥ encoding; a freshly created chunk is
// all-⊥.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(int64_t num_cells)
      : cells_(num_cells, CellValue::NullStorage()) {}

  int64_t size() const { return static_cast<int64_t>(cells_.size()); }

  CellValue Get(int64_t offset) const {
    return CellValue::FromStorage(cells_[offset]);
  }
  void Set(int64_t offset, CellValue v) { cells_[offset] = CellValue::ToStorage(v); }

  // Number of non-⊥ cells.
  int64_t CountNonNull() const;

  // Adds every non-⊥ cell of `other` into this chunk (⊥-skipping addition);
  // both chunks must have the same size. Used when merging the sub-cubes of
  // related member instances (Sec. 5.1).
  void AccumulateFrom(const Chunk& other);

  // --- Run kernels (chunk-native what-if evaluation) ----------------------
  //
  // The what-if operators move data between cubes in contiguous cell runs
  // (all trailing-dimension coordinates of a fixed axis prefix) instead of
  // cell-at-a-time SetCell calls; these kernels are that data path. All of
  // them copy raw storage doubles, so values round-trip bit-identically.

  // True when [offset, offset + len) contains at least one non-⊥ cell.
  // Used to avoid materialising output chunks for all-⊥ runs.
  bool RunHasNonNull(int64_t offset, int64_t len) const;

  // Copies every non-⊥ cell of src's [src_offset, src_offset + len) into
  // this chunk at the same relative position from dst_offset; ⊥ source
  // cells leave the destination untouched. Returns the number of cells
  // copied. The ranges must be in bounds; they may belong to chunks of
  // different geometry (offsets are precomputed by the caller).
  int64_t CopyRunFrom(const Chunk& src, int64_t src_offset, int64_t dst_offset,
                      int64_t len);

  // Whole-chunk variant of CopyRunFrom: merges every non-⊥ cell of `other`
  // (same size) into this chunk, returning the number copied. Callers
  // guarantee disjointness of the non-⊥ sets when determinism matters.
  int64_t MergeNonNullFrom(const Chunk& other);

 private:
  std::vector<double> cells_;
};

}  // namespace olap

#endif  // OLAP_CUBE_CHUNK_H_
