#ifndef OLAP_CUBE_CHUNK_H_
#define OLAP_CUBE_CHUNK_H_

#include <cstdint>
#include <memory>

#include "common/bitset.h"
#include "common/value.h"

namespace olap {

// One dense tile of a chunked multidimensional array, stored SIMD-friendly:
//
//   values_   64-byte-aligned dense double array; ⊥ slots hold +0.0 and a
//             stored value is never NaN (CellValue canonicalises on entry),
//             so vector lanes never meet the sentinel in arithmetic.
//   nonnull_  validity bitmap; bit set <=> the cell is non-⊥.
//
// CellValue's quiet-NaN ⊥ sentinel survives only at the boundaries: Get/Set
// speak CellValue, and FillSentinel/AssignRunFromSentinel translate whole
// runs to and from the sentinel-encoded form the OLAPCUB2 storage format
// keeps on disk. The hot loops (aggregation, what-if run copies) go through
// ValuesSpan()/NullBits() and the kernels in agg/kernels.h instead of
// per-cell sentinel tests. A freshly created chunk is all-⊥.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(int64_t num_cells);

  Chunk(const Chunk& other);
  Chunk& operator=(const Chunk& other);
  Chunk(Chunk&&) noexcept = default;
  Chunk& operator=(Chunk&&) noexcept = default;

  int64_t size() const { return size_; }

  CellValue Get(int64_t offset) const {
    return nonnull_.Test(static_cast<int>(offset))
               ? CellValue(values_[offset])
               : CellValue::Null();
  }
  void Set(int64_t offset, CellValue v) {
    const int pos = static_cast<int>(offset);
    if (v.is_null()) {
      nonnull_.Reset(pos);
      values_[offset] = 0.0;
    } else {
      nonnull_.Set(pos);
      values_[offset] = v.value();
    }
  }

  // --- Raw layout access (hot read paths; no CellValue round-trip) --------

  bool IsNull(int64_t offset) const {
    return !nonnull_.Test(static_cast<int>(offset));
  }
  // The stored value; +0.0 for ⊥ slots (callers check IsNull first when the
  // distinction matters).
  double ValueAt(int64_t offset) const { return values_[offset]; }
  // Sentinel-encoded view of one cell (storage format).
  double StorageAt(int64_t offset) const {
    return nonnull_.Test(static_cast<int>(offset)) ? values_[offset]
                                                   : CellValue::NullStorage();
  }
  // The dense value array (64-byte aligned, size() doubles).
  const double* ValuesSpan() const { return values_.get(); }
  // The validity bitmap: bit set <=> cell non-⊥.
  const DynamicBitset& NullBits() const { return nonnull_; }

  // Number of non-⊥ cells.
  int64_t CountNonNull() const;

  // Adds every non-⊥ cell of `other` into this chunk (⊥-skipping addition);
  // both chunks must have the same size. Used when merging the sub-cubes of
  // related member instances (Sec. 5.1).
  void AccumulateFrom(const Chunk& other);

  // --- Run kernels (chunk-native what-if evaluation) ----------------------
  //
  // The what-if operators move data between cubes in contiguous cell runs
  // (all trailing-dimension coordinates of a fixed axis prefix) instead of
  // cell-at-a-time SetCell calls; these kernels are that data path. All of
  // them copy raw values bitwise, so cells round-trip bit-identically.

  // True when [offset, offset + len) contains at least one non-⊥ cell.
  // Used to avoid materialising output chunks for all-⊥ runs.
  bool RunHasNonNull(int64_t offset, int64_t len) const;

  // Copies every non-⊥ cell of src's [src_offset, src_offset + len) into
  // this chunk at the same relative position from dst_offset; ⊥ source
  // cells leave the destination untouched. Returns the number of cells
  // copied. The ranges must be in bounds; they may belong to chunks of
  // different geometry (offsets are precomputed by the caller).
  int64_t CopyRunFrom(const Chunk& src, int64_t src_offset, int64_t dst_offset,
                      int64_t len);

  // Whole-chunk variant of CopyRunFrom: merges every non-⊥ cell of `other`
  // (same size) into this chunk, returning the number copied. Callers
  // guarantee disjointness of the non-⊥ sets when determinism matters.
  int64_t MergeNonNullFrom(const Chunk& other);

  // --- Storage-format boundary -------------------------------------------

  // Writes all size() cells into `out` in sentinel-encoded form.
  void FillSentinel(double* out) const;

  // Decodes `len` sentinel-encoded doubles into cells starting at `offset`.
  // The target cells must currently be ⊥ (fresh chunk or cleared run); any
  // NaN input decodes as ⊥ (CellValue canonicalisation). Returns the non-⊥
  // count decoded.
  int64_t AssignRunFromSentinel(int64_t offset, const double* raw,
                                int64_t len);

 private:
  struct AlignedDeleter {
    void operator()(double* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  using AlignedValues = std::unique_ptr<double[], AlignedDeleter>;

  static AlignedValues AllocValues(int64_t n);

  int64_t size_ = 0;
  AlignedValues values_;
  DynamicBitset nonnull_;
};

}  // namespace olap

#endif  // OLAP_CUBE_CHUNK_H_
