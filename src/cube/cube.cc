#include "cube/cube.h"

#include <cassert>

#include "common/strings.h"

namespace olap {

Cube::Cube(Schema schema, const CubeOptions& options) : schema_(std::move(schema)) {
  std::vector<int> extents = schema_.PositionExtents();
  std::vector<int> sizes = options.chunk_sizes;
  if (sizes.empty()) {
    sizes.assign(extents.size(), options.chunk_size);
  }
  assert(sizes.size() == extents.size());
  layout_ = ChunkLayout(std::move(extents), std::move(sizes));
}

Cube::Cube(const Cube& other)
    : schema_(other.schema_), layout_(other.layout_), chunks_(other.chunks_) {}

Cube& Cube::operator=(const Cube& other) {
  if (this != &other) {
    schema_ = other.schema_;
    layout_ = other.layout_;
    chunks_ = other.chunks_;
    last_chunk_.store(nullptr, std::memory_order_relaxed);
  }
  return *this;
}

Cube::Cube(Cube&& other) noexcept
    : schema_(std::move(other.schema_)),
      layout_(std::move(other.layout_)),
      chunks_(std::move(other.chunks_)) {
  other.last_chunk_.store(nullptr, std::memory_order_relaxed);
}

Cube& Cube::operator=(Cube&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    layout_ = std::move(other.layout_);
    chunks_ = std::move(other.chunks_);
    last_chunk_.store(nullptr, std::memory_order_relaxed);
    other.last_chunk_.store(nullptr, std::memory_order_relaxed);
  }
  return *this;
}

CellValue Cube::GetCell(const std::vector<int>& coords) const {
  const ChunkId id = layout_.ChunkOf(coords);
  const ChunkNode* memo = last_chunk_.load(std::memory_order_acquire);
  if (memo != nullptr && memo->first == id) {
    return memo->second.Get(layout_.OffsetInChunk(coords));
  }
  auto it = chunks_.find(id);
  if (it == chunks_.end()) return CellValue::Null();
  last_chunk_.store(&*it, std::memory_order_release);
  return it->second.Get(layout_.OffsetInChunk(coords));
}

CellValue Cube::GetCellUncached(const std::vector<int>& coords) const {
  const Chunk* chunk = FindChunk(layout_.ChunkOf(coords));
  if (chunk == nullptr) return CellValue::Null();
  return chunk->Get(layout_.OffsetInChunk(coords));
}

void Cube::SetCell(const std::vector<int>& coords, CellValue v) {
  ChunkId id = layout_.ChunkOf(coords);
  if (v.is_null() && !HasChunk(id)) return;  // Writing ⊥ to a hole: no-op.
  GetOrCreateChunk(id)->Set(layout_.OffsetInChunk(coords), v);
}

Status Cube::ResolveOneCoord(int dim, const std::string& path_name, int* out) const {
  const Dimension& d = schema_.dimension(dim);
  if (d.is_varying()) {
    // Accept "FTE/Joe" (specific instance) or "Joe" when unambiguous.
    std::vector<std::string> parts = Split(path_name, '/');
    Result<MemberId> leaf = d.FindMember(parts.back());
    if (!leaf.ok()) return leaf.status();
    if (parts.size() >= 2) {
      Result<MemberId> parent = d.FindMember(parts[parts.size() - 2]);
      if (!parent.ok()) return parent.status();
      InstanceId inst = d.FindInstance(*leaf, *parent);
      if (inst == kInvalidInstance) {
        return Status::NotFound("no instance '" + path_name + "' in dimension '" +
                                d.name() + "'");
      }
      *out = inst;
      return Status::Ok();
    }
    std::vector<InstanceId> insts = d.InstancesOf(*leaf);
    if (insts.size() != 1) {
      return Status::InvalidArgument(
          "member '" + path_name + "' has " + std::to_string(insts.size()) +
          " instances; qualify it as Parent/Member");
    }
    *out = insts[0];
    return Status::Ok();
  }
  Result<MemberId> m = d.FindMember(path_name);
  if (!m.ok()) return m.status();
  int ordinal = d.LeafOrdinal(*m);
  if (ordinal < 0) {
    return Status::InvalidArgument("member '" + path_name +
                                   "' is not a leaf of dimension '" + d.name() + "'");
  }
  *out = ordinal;
  return Status::Ok();
}

Result<std::vector<int>> Cube::ResolveCoords(
    const std::vector<std::string>& path_names) const {
  if (static_cast<int>(path_names.size()) != num_dims()) {
    return Status::InvalidArgument("expected one coordinate per dimension");
  }
  std::vector<int> coords(num_dims());
  for (int d = 0; d < num_dims(); ++d) {
    OLAP_RETURN_IF_ERROR(ResolveOneCoord(d, path_names[d], &coords[d]));
  }
  return coords;
}

Status Cube::SetByName(const std::vector<std::string>& path_names, CellValue v) {
  Result<std::vector<int>> coords = ResolveCoords(path_names);
  if (!coords.ok()) return coords.status();
  SetCell(*coords, v);
  return Status::Ok();
}

Result<CellValue> Cube::GetByName(const std::vector<std::string>& path_names) const {
  Result<std::vector<int>> coords = ResolveCoords(path_names);
  if (!coords.ok()) return coords.status();
  return GetCell(*coords);
}

std::vector<int> Cube::PositionsUnder(int dim, const AxisRef& ref) const {
  const Dimension& d = schema_.dimension(dim);
  std::vector<int> out;
  if (d.is_varying()) {
    if (ref.instance != kInvalidInstance) {
      out.push_back(ref.instance);
      return out;
    }
    const Member& m = d.member(ref.member);
    if (m.is_leaf()) {
      for (InstanceId i : d.InstancesOf(ref.member)) out.push_back(i);
      return out;
    }
    for (const MemberInstance& inst : d.instances()) {
      // An instance lies under a non-leaf member when its path parent is a
      // descendant (or self) of that member.
      if (d.IsDescendantOrSelf(inst.parent, ref.member)) out.push_back(inst.id);
    }
    return out;
  }
  for (MemberId leaf : d.LeavesUnder(ref.member)) {
    out.push_back(d.LeafOrdinal(leaf));
  }
  return out;
}

std::vector<std::pair<int, double>> Cube::PositionsUnderWeighted(
    int dim, const AxisRef& ref) const {
  const Dimension& d = schema_.dimension(dim);
  std::vector<std::pair<int, double>> out;
  if (d.is_varying()) {
    if (ref.instance != kInvalidInstance) {
      out.emplace_back(ref.instance, 1.0);
      return out;
    }
    const Member& m = d.member(ref.member);
    if (m.is_leaf()) {
      for (InstanceId i : d.InstancesOf(ref.member)) out.emplace_back(i, 1.0);
      return out;
    }
    for (const MemberInstance& inst : d.instances()) {
      if (!d.IsDescendantOrSelf(inst.parent, ref.member)) continue;
      double weight = d.member(inst.member).weight *
                      d.PathWeight(inst.parent, ref.member);
      if (weight != 0.0) out.emplace_back(inst.id, weight);
    }
    return out;
  }
  for (MemberId leaf : d.LeavesUnder(ref.member)) {
    double weight = leaf == ref.member ? 1.0 : d.PathWeight(leaf, ref.member);
    if (weight != 0.0) out.emplace_back(d.LeafOrdinal(leaf), weight);
  }
  return out;
}

bool Cube::IsLeafRef(const CellRef& ref, std::vector<int>* coords) const {
  coords->resize(num_dims());
  for (int dim = 0; dim < num_dims(); ++dim) {
    const Dimension& d = schema_.dimension(dim);
    const AxisRef& r = ref[dim];
    if (d.is_varying()) {
      if (r.instance != kInvalidInstance) {
        (*coords)[dim] = r.instance;
        continue;
      }
      if (!d.member(r.member).is_leaf()) return false;
      std::vector<InstanceId> insts = d.InstancesOf(r.member);
      if (insts.size() != 1) return false;
      (*coords)[dim] = insts[0];
      continue;
    }
    int ordinal = d.LeafOrdinal(r.member);
    if (ordinal < 0) return false;
    (*coords)[dim] = ordinal;
  }
  return true;
}

int64_t Cube::CountNonNullCells() const {
  int64_t n = 0;
  for (const auto& [id, chunk] : chunks_) n += chunk.CountNonNull();
  return n;
}

const Chunk* Cube::FindChunk(ChunkId id) const {
  auto it = chunks_.find(id);
  return it == chunks_.end() ? nullptr : &it->second;
}

void Cube::AdoptChunk(ChunkId id, Chunk&& chunk) {
  assert(chunk.size() == layout_.cells_per_chunk());
  auto [it, inserted] = chunks_.emplace(id, std::move(chunk));
  (void)it;
  assert(inserted && "AdoptChunk: chunk id already stored");
  (void)inserted;
}

void Cube::ReplaceChunk(ChunkId id, Chunk&& chunk) {
  assert(chunk.size() == layout_.cells_per_chunk());
  last_chunk_.store(nullptr, std::memory_order_release);
  chunks_.insert_or_assign(id, std::move(chunk));
}

void Cube::EraseChunk(ChunkId id) {
  last_chunk_.store(nullptr, std::memory_order_release);
  chunks_.erase(id);
}

void Cube::AdoptChunks(std::map<ChunkId, Chunk>&& m) {
#ifndef NDEBUG
  for (const auto& [id, chunk] : m) {
    (void)id;
    assert(chunk.size() == layout_.cells_per_chunk());
  }
#endif
  if (chunks_.empty()) {
    chunks_ = std::move(m);
    m.clear();  // Moved-from maps are valid but unspecified.
    return;
  }
  // Hinted node splice: incoming ids ascend, so inserting each node just
  // after the previous one's position is amortized O(1) when the incoming
  // range lands in a gap; a stale hint only costs the usual O(log n).
  auto hint = chunks_.end();
  while (!m.empty()) {
    auto nh = m.extract(m.begin());
    auto it = chunks_.insert(hint, std::move(nh));
    if (!nh.empty()) {
      // Id already stored: merge the non-⊥ cells instead.
      it->second.MergeNonNullFrom(nh.mapped());
    }
    hint = std::next(it);
  }
}

Chunk* Cube::GetOrCreateChunk(ChunkId id) {
  auto it = chunks_.find(id);
  if (it == chunks_.end()) {
    it = chunks_.emplace(id, Chunk(layout_.cells_per_chunk())).first;
  }
  return &it->second;
}

void Cube::ForEachChunk(
    const std::function<void(ChunkId, const Chunk&)>& fn) const {
  for (const auto& [id, chunk] : chunks_) fn(id, chunk);
}

void Cube::ForEachCell(
    const std::function<void(const std::vector<int>&, CellValue)>& fn) const {
  for (const auto& [id, chunk] : chunks_) {
    layout_.ForEachCellInChunk(id, [&](const std::vector<int>& coords, int64_t off) {
      if (!chunk.IsNull(off)) fn(coords, CellValue(chunk.ValueAt(off)));
    });
  }
}

void Cube::ClearSlice(int dim, int pos) {
  for (auto& [id, chunk] : chunks_) {
    std::vector<int> base = layout_.ChunkBase(id);
    int lo = base[dim];
    int hi = lo + layout_.chunk_sizes()[dim];
    if (pos < lo || pos >= hi) continue;
    layout_.ForEachCellInChunk(id, [&](const std::vector<int>& coords, int64_t off) {
      if (coords[dim] == pos) chunk.Set(off, CellValue::Null());
    });
  }
}

}  // namespace olap
