#ifndef OLAP_CUBE_CUBE_H_
#define OLAP_CUBE_CUBE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "cube/chunk.h"
#include "cube/chunk_layout.h"
#include "dimension/schema.h"

namespace olap {

// A query-level coordinate along one dimension: a member (possibly non-leaf),
// optionally pinned to a specific member instance of a varying dimension.
// The paper treats members and member instances uniformly (end of Sec. 3.2);
// AxisRef is how the engine does the same.
struct AxisRef {
  MemberId member = kInvalidMember;
  InstanceId instance = kInvalidInstance;

  static AxisRef OfMember(MemberId m) { return AxisRef{m, kInvalidInstance}; }
  static AxisRef OfInstance(MemberId m, InstanceId i) { return AxisRef{m, i}; }

  friend bool operator==(const AxisRef& a, const AxisRef& b) {
    return a.member == b.member && a.instance == b.instance;
  }
};

// One coordinate per dimension, in schema dimension order.
using CellRef = std::vector<AxisRef>;

// Options controlling a cube's physical organization.
struct CubeOptions {
  // Tile size used along every dimension (clamped per dimension).
  int chunk_size = 4;
  // Per-dimension override; when non-empty it must match the schema rank.
  std::vector<int> chunk_sizes;
};

// An n-dimensional cube: a Schema plus chunked leaf-cell storage.
//
// Only *leaf cells* (one leaf/instance position per dimension) are stored;
// non-leaf cells are derived via rules (the paper's standing assumption in
// Sec. 2: "all leaf level cells are base and all non-leaf cells are
// derived"). Aggregation/rules evaluation lives in olap_rules / olap_agg.
//
// The cube is a value type: what-if operators produce transformed copies.
class Cube {
 public:
  // An empty, zero-dimensional cube (placeholder; not usable for data).
  Cube() = default;
  Cube(Schema schema, const CubeOptions& options = CubeOptions());

  // Value semantics; the GetCell chunk memo is per-object and never carried
  // across copies/moves (it points into this cube's own chunk map).
  Cube(const Cube& other);
  Cube& operator=(const Cube& other);
  Cube(Cube&& other) noexcept;
  Cube& operator=(Cube&& other) noexcept;

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }
  const ChunkLayout& layout() const { return layout_; }
  int num_dims() const { return schema_.num_dimensions(); }

  // --- Leaf-cell access (by position coordinates) -----------------------

  // `coords[d]` is an axis position of dimension d (instance index for a
  // varying dimension, leaf ordinal otherwise). GetCell memoizes the last
  // chunk it touched (scope enumeration walks positions in order, so
  // consecutive reads overwhelmingly land in the same chunk); the memo is a
  // single atomic pointer, safe under concurrent read-only evaluation.
  CellValue GetCell(const std::vector<int>& coords) const;
  // GetCell without the last-chunk memo (always a map lookup). Baseline for
  // the memo microbench; results are identical to GetCell.
  CellValue GetCellUncached(const std::vector<int>& coords) const;
  void SetCell(const std::vector<int>& coords, CellValue v);

  // --- Leaf-cell access (by member names, for tests/examples) ------------

  // Each entry of `path_names` addresses dimension d: either a plain leaf
  // member name ("Jan") or an instance path "FTE/Joe" for varying
  // dimensions.
  Result<std::vector<int>> ResolveCoords(
      const std::vector<std::string>& path_names) const;
  Status SetByName(const std::vector<std::string>& path_names, CellValue v);
  Result<CellValue> GetByName(const std::vector<std::string>& path_names) const;

  // --- Scope resolution ----------------------------------------------------

  // Axis positions of dimension `dim` covered by `ref`:
  //  * a pinned instance        -> that single position;
  //  * a leaf member            -> all its instances (varying) or its leaf
  //                                ordinal (regular);
  //  * a non-leaf member        -> every position whose root-to-leaf path
  //                                passes through it.
  std::vector<int> PositionsUnder(int dim, const AxisRef& ref) const;

  // As PositionsUnder, but each position carries its consolidation weight:
  // the product of Member::weight along the path from the ref's member
  // (exclusive) down to the position's leaf (inclusive). Pinned instances
  // and leaf refs weigh 1.0. Zero-weight (~) positions are omitted.
  std::vector<std::pair<int, double>> PositionsUnderWeighted(
      int dim, const AxisRef& ref) const;

  // True when every AxisRef in `ref` resolves to exactly one position;
  // fills `coords` with those positions.
  bool IsLeafRef(const CellRef& ref, std::vector<int>* coords) const;

  // --- Chunk-level access (used by aggregation / what-if evaluation) ------

  // Number of chunks that currently hold at least one written cell.
  int64_t NumStoredChunks() const { return static_cast<int64_t>(chunks_.size()); }
  // Total non-⊥ cells across stored chunks.
  int64_t CountNonNullCells() const;

  bool HasChunk(ChunkId id) const { return chunks_.count(id) > 0; }
  // Read-only chunk pointer, or nullptr when the chunk holds no data.
  const Chunk* FindChunk(ChunkId id) const;
  // Chunk for writing, created empty (all-⊥) on first touch.
  Chunk* GetOrCreateChunk(ChunkId id);

  // Installs a fully built chunk under `id` (moving it). The chunk must
  // match the layout's cells_per_chunk and `id` must not already be stored.
  // Used by the parallel what-if kernels to merge per-task partial outputs.
  void AdoptChunk(ChunkId id, Chunk&& chunk);

  // Bulk AdoptChunk: splices every chunk of `m` into this cube without
  // reallocating map nodes; ids already stored instead merge their non-⊥
  // cells into the existing chunk (⊥-skipping overwrite). `m` is left
  // empty. Every chunk must match the layout's cells_per_chunk.
  void AdoptChunks(std::map<ChunkId, Chunk>&& m);

  // Swaps in a fully built chunk under `id`, creating it when absent. Used
  // by delta refresh to patch an affected chunk in place; resets the
  // GetCell memo, whose node pointer may otherwise keep serving the
  // replaced bytes (or dangle after EraseChunk below).
  void ReplaceChunk(ChunkId id, Chunk&& chunk);

  // Drops the chunk stored under `id` (no-op when absent); every cell of
  // that chunk reads ⊥ afterwards. Resets the GetCell memo.
  void EraseChunk(ChunkId id);

  // Iterates stored chunks in ascending chunk-id order.
  void ForEachChunk(
      const std::function<void(ChunkId, const Chunk&)>& fn) const;

  // As ForEachChunk, but stops as soon as `fn` returns false. Templated so
  // hot callers (e.g. early-exiting selection predicates) pay no
  // std::function dispatch.
  template <typename Fn>
  void ForEachChunkWhile(Fn&& fn) const {
    for (const auto& [id, chunk] : chunks_) {
      if (!fn(id, chunk)) return;
    }
  }

  // Iterates every non-⊥ stored cell: fn(coords, value).
  void ForEachCell(
      const std::function<void(const std::vector<int>&, CellValue)>& fn) const;

  // Templated equivalent of ForEachCell for hot paths: identical visit
  // order (ascending chunk id, row-major within each chunk), but the
  // callback is inlined instead of dispatched through std::function.
  template <typename Fn>
  void ForEachChunkCell(Fn&& fn) const {
    for (const auto& [id, chunk] : chunks_) {
      layout_.ForEachCellInChunk(id,
                                 [&](const std::vector<int>& coords, int64_t off) {
                                   // Cheap bitmap test before building the
                                   // CellValue — most padded/⊥ cells exit here.
                                   if (!chunk.IsNull(off)) {
                                     fn(coords, CellValue(chunk.ValueAt(off)));
                                   }
                                 });
    }
  }

  // Removes all cells at position `pos` of dimension `dim` (sets them to ⊥).
  // Used by the Selection operator to drop sub-cubes of non-active members.
  void ClearSlice(int dim, int pos);

 private:
  using ChunkNode = std::pair<const ChunkId, Chunk>;

  Status ResolveOneCoord(int dim, const std::string& path_name, int* out) const;

  Schema schema_;
  ChunkLayout layout_;
  std::map<ChunkId, Chunk> chunks_;  // Ordered => deterministic iteration.
  // Last chunk-map node GetCell resolved. Node pointers stay valid until
  // the node itself is erased or its chunk replaced, so every mutation
  // that can invalidate the node — copy/move, ReplaceChunk, EraseChunk —
  // resets the memo.
  mutable std::atomic<const ChunkNode*> last_chunk_{nullptr};
};

}  // namespace olap

#endif  // OLAP_CUBE_CUBE_H_
