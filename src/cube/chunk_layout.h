#ifndef OLAP_CUBE_CHUNK_LAYOUT_H_
#define OLAP_CUBE_CHUNK_LAYOUT_H_

#include <cstdint>
#include <vector>

namespace olap {

// Identifies one chunk (tile) of the multidimensional array. Chunk ids are
// row-major over the chunk grid, with the LAST dimension varying fastest —
// matching the numbering convention of Zhao et al.'s Fig. 6 as reproduced in
// the paper (chunks are read "in some dimension order").
using ChunkId = int64_t;

// Partitioning of an n-dimensional array of extents[i] positions per
// dimension into uniform tiles of chunk_sizes[i] cells per dimension
// (edge chunks are padded — cells beyond the extent simply stay ⊥).
//
// This is the physical organization of both the paper's cubes and the
// Zhao et al. SIGMOD'97 algorithm the evaluation strategies build on.
class ChunkLayout {
 public:
  ChunkLayout() = default;
  // `chunk_sizes` must have the same rank as `extents`; each entry is
  // clamped to [1, extent].
  ChunkLayout(std::vector<int> extents, std::vector<int> chunk_sizes);

  // Uniform-chunk-size convenience constructor.
  static ChunkLayout Uniform(std::vector<int> extents, int chunk_size);

  int num_dims() const { return static_cast<int>(extents_.size()); }
  const std::vector<int>& extents() const { return extents_; }
  const std::vector<int>& chunk_sizes() const { return chunk_sizes_; }
  // Number of chunks along each dimension.
  const std::vector<int>& chunks_per_dim() const { return chunks_per_dim_; }

  // Total number of chunks in the grid.
  int64_t num_chunks() const { return num_chunks_; }
  // Cells per (padded) chunk.
  int64_t cells_per_chunk() const { return cells_per_chunk_; }
  // Total number of addressable cells (product of extents).
  int64_t num_cells() const;

  // Chunk containing the cell at `coords` (one position per dimension).
  ChunkId ChunkOf(const std::vector<int>& coords) const;
  // Row-major offset of the cell inside its chunk.
  int64_t OffsetInChunk(const std::vector<int>& coords) const;

  // Chunk-grid coordinates of a chunk id and back.
  std::vector<int> ChunkCoords(ChunkId id) const;
  ChunkId ChunkIdAt(const std::vector<int>& chunk_coords) const;

  // First cell coordinate covered by the chunk, per dimension.
  std::vector<int> ChunkBase(ChunkId id) const;

  // In-extent (non-padded) length of chunk `id` along `dim`: edge chunks
  // clip to the extent, interior chunks return chunk_sizes()[dim]. Along
  // the last dimension this is the unit-stride row length the vector
  // kernels operate on.
  int InExtentSize(ChunkId id, int dim) const;

  // Iterates all cell coords inside chunk `id` that fall within the array
  // extents, invoking fn(cell_coords, offset_in_chunk).
  template <typename Fn>
  void ForEachCellInChunk(ChunkId id, Fn&& fn) const {
    std::vector<int> base = ChunkBase(id);
    std::vector<int> coords = base;
    const int n = num_dims();
    while (true) {
      bool in_range = true;
      for (int d = 0; d < n; ++d) {
        if (coords[d] >= extents_[d]) {
          in_range = false;
          break;
        }
      }
      if (in_range) fn(coords, OffsetInChunk(coords));
      // Odometer increment within the chunk box.
      int d = n - 1;
      while (d >= 0) {
        ++coords[d];
        if (coords[d] < base[d] + chunk_sizes_[d]) break;
        coords[d] = base[d];
        --d;
      }
      if (d < 0) return;
    }
  }

 private:
  std::vector<int> extents_;
  std::vector<int> chunk_sizes_;
  std::vector<int> chunks_per_dim_;
  int64_t num_chunks_ = 0;
  int64_t cells_per_chunk_ = 0;
};

}  // namespace olap

#endif  // OLAP_CUBE_CHUNK_LAYOUT_H_
