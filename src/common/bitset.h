#ifndef OLAP_COMMON_BITSET_H_
#define OLAP_COMMON_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace olap {

// A fixed-universe dynamic bitset used to represent validity sets
// (subsets of the leaf members of a parameter dimension) and chunk sets.
//
// All binary operations require both operands to have the same size();
// this is asserted in debug builds and is a documented precondition.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  // Constructs an all-zero set over a universe of `size` elements.
  explicit DynamicBitset(int size);

  // Universe size in bits (NOT the population count).
  int size() const { return size_; }
  bool empty_universe() const { return size_ == 0; }

  void Set(int pos);
  void Reset(int pos);
  void Assign(int pos, bool value);
  bool Test(int pos) const;

  // Sets/clears every bit.
  void SetAll();
  void ResetAll();

  // Number of set bits.
  int Count() const;
  bool None() const { return Count() == 0; }
  bool Any() const { return Count() > 0; }

  // Index of the first set bit at position >= from, or -1 if none.
  int FindNext(int from) const;
  int FindFirst() const { return FindNext(0); }

  // Index of the first CLEAR bit at position >= from, or size() if every
  // bit from `from` on is set. Word-blocked, like FindNext; used for run
  // detection over chunk validity bitmaps (storage/compression.cc).
  int FindNextUnset(int from) const;

  // Calls fn(pos) for every set bit, ascending. Inline and word-at-a-time:
  // on hot paths (destination-table construction) this beats a
  // FindFirst/FindNext loop, which pays an out-of-line call and a fresh
  // word/mask computation per bit.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t m = words_[w];
      while (m != 0) {
        const int pos = static_cast<int>(w) * 64 + std::countr_zero(m);
        fn(pos);
        m &= m - 1;
      }
    }
  }

  // Raw word access for the vector kernels (agg/kernels.h): bit i lives at
  // words()[i >> 6], bit (i & 63). Bits at positions >= size() are always
  // zero; writers through mutable_words() must preserve that invariant
  // (Count(), comparisons and the word-blocked kernels rely on it).
  int num_words() const { return static_cast<int>(words_.size()); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  // Positions of all set bits, ascending.
  std::vector<int> ToVector() const;
  // Builds a set over `size` with the given positions set.
  static DynamicBitset FromVector(int size, const std::vector<int>& positions);

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  // Removes other's bits from this set (set difference).
  DynamicBitset& Subtract(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  // True if this set and `other` share no elements.
  bool DisjointWith(const DynamicBitset& other) const;
  // True if every element of this set is in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  // E.g. "{1, 3, 7}".
  std::string ToString() const;

 private:
  void TrimTail();  // Clears bits beyond size_ in the last word.

  int size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace olap

#endif  // OLAP_COMMON_BITSET_H_
