#ifndef OLAP_COMMON_STATUS_H_
#define OLAP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace olap {

// Canonical error space for the library. The project does not use C++
// exceptions (fallible operations return Status or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Caller passed something malformed.
  kNotFound,          // Named entity (member, cube, dimension) missing.
  kAlreadyExists,     // Attempt to create a duplicate entity.
  kOutOfRange,        // Ordinal/coordinate outside the valid domain.
  kFailedPrecondition,// Object state does not permit the operation.
  kUnimplemented,     // Declared but intentionally unsupported path.
  kInternal,          // Invariant violation inside the library.
  kDataLoss,          // Unrecoverable corruption (bad CRC, torn write).
  kUnavailable,       // Transient fault; safe to retry with backoff.
  kResourceExhausted, // Out of quota/space; may clear up, retryable.
  kCancelled,         // Caller requested cancellation; work was abandoned.
  kDeadlineExceeded,  // Query deadline expired before completion.

  // Not a real code — one past the last. Keep it last so tests can
  // enumerate every code and assert each has a StatusCodeName entry.
  kStatusCodeCount,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of a fallible operation.
//
// Example:
//   Status s = cube.Write(addr, 3.0);
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value of type T or an error Status. Analogous to absl::StatusOr.
//
// Example:
//   Result<Query> q = ParseQuery(text);
//   if (!q.ok()) return q.status();
//   Execute(*q);
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &const_cast<Result*>(this)->value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define OLAP_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::olap::Status olap_status_ = (expr);       \
    if (!olap_status_.ok()) return olap_status_; \
  } while (0)

}  // namespace olap

#endif  // OLAP_COMMON_STATUS_H_
