#ifndef OLAP_COMMON_STRINGS_H_
#define OLAP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace olap {

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy.
std::string ToLower(std::string_view s);

// True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits on a single character, keeping empty tokens.
std::vector<std::string> Split(std::string_view s, char sep);

// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

}  // namespace olap

#endif  // OLAP_COMMON_STRINGS_H_
