#ifndef OLAP_COMMON_VALUE_H_
#define OLAP_COMMON_VALUE_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace olap {

// A cube cell holds either a numeric value or the null value ⊥ ("meaningless
// combination", Sec. 2 of the paper — e.g. FTE/Joe in Feb when that member
// instance is not valid in Feb).
//
// Storage representation: cells are raw doubles inside dense chunks; ⊥ is a
// dedicated quiet-NaN bit pattern so a chunk stays a flat double array.
// Client code should not store arbitrary NaNs in a cube: any NaN written is
// canonicalised to ⊥.
class CellValue {
 public:
  // Constructs ⊥.
  constexpr CellValue() : bits_(kNullBits) {}
  // Constructs a numeric cell; NaN inputs become ⊥.
  explicit CellValue(double v) : bits_(Canonical(v)) {}

  static constexpr CellValue Null() { return CellValue(); }

  bool is_null() const { return bits_ == kNullBits; }
  bool has_value() const { return !is_null(); }

  // Numeric value; must not be called on ⊥.
  double value() const { return FromBits(bits_); }
  // Numeric value, or `fallback` for ⊥.
  double value_or(double fallback) const {
    return is_null() ? fallback : value();
  }

  // Raw storage conversion used by chunked storage.
  static double ToStorage(CellValue v) { return FromBits(v.bits_); }
  static CellValue FromStorage(double raw) { return CellValue(raw); }
  // The double bit pattern chunks use for ⊥.
  static double NullStorage() { return FromBits(kNullBits); }
  // ⊥-test on a raw storage double without a CellValue round-trip. Note
  // this tests the exact sentinel pattern: other NaNs are NOT storage-null
  // (they only become ⊥ through CellValue canonicalisation on entry).
  static bool IsStorageNull(double raw) { return ToBits(raw) == kNullBits; }
  // The sentinel bit pattern as an integer, for vector lane compares.
  static constexpr uint64_t NullStorageBits() { return kNullBits; }

  // OLAP aggregation treats ⊥ as *missing*: it is skipped, and an
  // aggregate over only-⊥ inputs is itself ⊥ (matches the paper's Fig. 2,
  // where FTE/Joe Q1 = Jan + ⊥ + ⊥ = 10 + 10 in NY slice rows).
  friend CellValue operator+(CellValue a, CellValue b) {
    if (a.is_null()) return b;
    if (b.is_null()) return a;
    return CellValue(a.value() + b.value());
  }
  CellValue& operator+=(CellValue other) { return *this = *this + other; }

  // Equality: ⊥ == ⊥, ⊥ != any number.
  friend bool operator==(CellValue a, CellValue b) {
    if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
    return a.value() == b.value();
  }
  friend bool operator!=(CellValue a, CellValue b) { return !(a == b); }

  // "⊥" or the shortest round-trip-ish decimal rendering.
  std::string ToString() const;

 private:
  // A specific quiet-NaN payload reserved for ⊥.
  static constexpr uint64_t kNullBits = 0x7ff8dead00000001ULL;

  static uint64_t ToBits(double v) {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  static uint64_t Canonical(double v) {
    return std::isnan(v) ? kNullBits : ToBits(v);
  }

  uint64_t bits_;
};

inline std::string CellValue::ToString() const {
  if (is_null()) return "⊥";
  double v = value();
  if (v == static_cast<int64_t>(v) &&
      std::abs(v) < 1e15) {  // Render integral values without ".000000".
    return std::to_string(static_cast<int64_t>(v));
  }
  return std::to_string(v);
}

}  // namespace olap

#endif  // OLAP_COMMON_VALUE_H_
