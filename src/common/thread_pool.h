#ifndef OLAP_COMMON_THREAD_POOL_H_
#define OLAP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"

namespace olap {

// A fixed-size work-queue thread pool shared by every parallel evaluation
// path (grid evaluation, relocation, rollup). One process-wide pool is
// created lazily by Shared(); per-call parallelism is capped by the caller
// (QueryOptions::eval_threads), so a single reusable pool serves queries
// with different thread budgets instead of spawning fresh std::threads per
// query.
//
// ParallelFor is the only synchronisation primitive the engine needs: the
// calling thread *participates* in the loop, which makes nested ParallelFor
// calls deadlock-free (a saturated pool degrades to the caller draining the
// whole index range itself).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one fire-and-forget task.
  void Schedule(std::function<void()> fn);

  // Invokes fn(i) exactly once for every i in [0, n), using at most
  // `parallelism` concurrent executors (the caller plus up to
  // parallelism - 1 pool workers), and blocks until every call returned.
  //
  // Indices are claimed from an atomic counter, so which thread runs which
  // index is nondeterministic — callers must write to disjoint, index-owned
  // output slots to keep results deterministic. parallelism <= 1 runs the
  // whole loop inline on the caller.
  //
  // `cancel` is polled once per claimed index (work-unit granularity):
  // after a stop request the remaining indices are claimed but fn is no
  // longer invoked, so the loop drains fast and the call still returns
  // only after every executor is done with the range. The caller owns the
  // follow-up — check cancel.Poll() after the loop; ParallelFor itself
  // never fails. Skipped indices leave their output slots untouched, so
  // cancelled results must be discarded, never published.
  void ParallelFor(int64_t n, int parallelism,
                   const std::function<void(int64_t)>& fn,
                   const CancellationToken& cancel = {});

  // Below this many work units per executor, fan-out costs more than it
  // saves (queue wakeups + cache misses dwarf sub-millisecond kernels).
  static constexpr int64_t kMinWorkUnitsPerExecutor = 1 << 14;

  // Work-hinted overload: same contract as ParallelFor above, but the
  // number of concurrent executors is additionally capped by the hardware
  // core count (oversubscribing a small machine only adds scheduling
  // overhead) and by work_units / kMinWorkUnitsPerExecutor, so small
  // kernels run inline on the caller instead of paying fan-out latency.
  // `work_units` is the caller's estimate of total cheap inner operations
  // (e.g. cells touched) across the whole index range.
  void ParallelFor(int64_t n, int parallelism, int64_t work_units,
                   const std::function<void(int64_t)>& fn,
                   const CancellationToken& cancel = {});

  // The executor count the work-hinted ParallelFor would actually use:
  // `parallelism` capped by HardwareCores() and by
  // work_units / kMinWorkUnitsPerExecutor (>= 1). Pure — no metrics.
  // Callers sizing per-task scratch (partial maps, accumulators) must use
  // this instead of the requested parallelism, or a clamped run pays the
  // allocation and merge cost of a fan-out that never happens.
  static int ClampedExecutors(int parallelism, int64_t work_units);

  // Number of hardware execution slots on this machine (>= 1). On Linux
  // this is the affinity-visible core count (the scheduler mask is the
  // truth inside cpuset-limited containers); elsewhere it falls back to
  // std::thread::hardware_concurrency().
  static int HardwareCores();

  // CPUs in this process's scheduler affinity mask (Linux), else
  // hardware_concurrency; >= 1.
  static int AffinityVisibleCores();

  // The process-wide pool, sized to the hardware concurrency. Thread-safe;
  // created on first use and intentionally leaked (workers must outlive
  // every static destructor that might still evaluate queries).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace olap

#endif  // OLAP_COMMON_THREAD_POOL_H_
