#ifndef OLAP_COMMON_TRACE_H_
#define OLAP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace olap {

// Scoped query tracing.
//
// A TraceSpan is an RAII scope marker: construction records a start time
// and links the span under the innermost open span *of the same thread*;
// destruction records the end time. Spans recorded on thread-pool workers
// root at that worker (cross-thread parentage is not tracked — a fan-out
// shows up as one subtree per participating thread, which is what
// chrome://tracing renders anyway).
//
// Recording is off by default: an idle TraceSpan costs one relaxed atomic
// load. TraceCollector::Enable() turns recording on process-wide;
// DisableAndDrain() turns it off and merges every thread's buffer into one
// TraceData. Sessions are process-global and must not overlap — the engine
// serializes profiled queries (see Executor), and tests drive one session
// at a time.
//
// A span that is open when DisableAndDrain() runs is drained as-is (end
// time zero) and makes the session's TraceData ill-formed; the span's
// destructor then completes harmlessly against the emptied buffer. The
// stats contract suite asserts drained trees are well-formed, so a leaked
// open span is a test failure, not UB.

struct SpanRecord {
  std::string name;
  int64_t start_ns = 0;  // steady_clock, process-relative.
  int64_t end_ns = 0;    // 0 => never closed (ill-formed).
  int thread = 0;        // Dense per-session thread index.
  int parent = -1;       // Index into TraceData::spans; -1 = root.
  bool ok = true;        // false once SetError was called.
  std::string detail;    // Error text or call-site annotation.

  double duration_ms() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
};

// One drained tracing session.
struct TraceData {
  std::vector<SpanRecord> spans;

  // Structural invariants the stats contract suite enforces: every span
  // closed with end >= start, parent indices in range and pointing at a
  // span of the same thread whose interval contains the child's.
  bool WellFormed(std::string* why = nullptr) const;

  // Aggregation by (depth-first path of span names): count, total wall
  // time, errors. Rendered by ToText; also the base of the EXPLAIN
  // ANALYZE profile output.
  struct AggregateRow {
    std::string name;  // Leaf span name.
    int depth = 0;     // Nesting depth of the path.
    int64_t count = 0;
    int64_t total_ns = 0;
    int64_t errors = 0;
  };
  std::vector<AggregateRow> Aggregate() const;

  // Indented per-span table from Aggregate().
  std::string ToText() const;

  // chrome://tracing "traceEvents" JSON (complete events, microsecond
  // timestamps).
  std::string ToChromeJson() const;

  // Sum of wall time over spans with this name (ill-formed/open spans
  // contribute zero).
  int64_t TotalNanos(const std::string& name) const;
  // Number of spans with this name.
  int64_t CountOf(const std::string& name) const;
};

class TraceCollector {
 public:
  // Starts a process-wide tracing session. Returns false (and changes
  // nothing) if a session is already active.
  static bool Enable();
  // Ends the session and returns every span recorded since Enable().
  static TraceData DisableAndDrain();
  static bool enabled();
};

class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Marks the span failed and records the status text.
  void SetError(const Status& status);
  // Free-form annotation ("chunks=117"); kept verbatim in the record.
  void SetDetail(std::string detail);
  // True when this span is actually recording (session active at
  // construction time).
  bool active() const { return index_ >= 0; }

 private:
  int index_ = -1;      // Slot in the owning thread buffer; -1 = inactive.
  uint64_t epoch_ = 0;  // Session the slot belongs to.
};

}  // namespace olap

#endif  // OLAP_COMMON_TRACE_H_
