#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace olap {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One thread's recording buffer. Parent indices are local to the buffer
// until drain, which remaps them into the merged vector. The per-buffer
// mutex is only ever contended by DisableAndDrain.
struct ThreadBuffer {
  std::mutex mu;
  uint64_t epoch = 0;  // Session the records belong to; 0 = none.
  std::vector<SpanRecord> spans;
  std::vector<int> open;  // Stack of open local indices.
};

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_epoch{0};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<std::shared_ptr<ThreadBuffer>>& Registry() {
  static auto* buffers = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *buffers;
}

ThreadBuffer* LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    Registry().push_back(b);
    return b;
  }();
  return buffer.get();
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (c == '\n') {
      out->append("\\n");
      continue;
    }
    out->push_back(c);
  }
}

}  // namespace

bool TraceCollector::Enable() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  if (g_enabled.load(std::memory_order_acquire)) return false;
  g_epoch.fetch_add(1, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
  return true;
}

bool TraceCollector::enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

TraceData TraceCollector::DisableAndDrain() {
  TraceData data;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  g_enabled.store(false, std::memory_order_release);
  const uint64_t session = g_epoch.load(std::memory_order_acquire);

  int thread_index = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : Registry()) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->epoch != session || buffer->spans.empty()) continue;
    const int base = static_cast<int>(data.spans.size());
    for (SpanRecord& record : buffer->spans) {
      record.thread = thread_index;
      if (record.parent >= 0) record.parent += base;
      data.spans.push_back(std::move(record));
    }
    buffer->spans.clear();
    buffer->open.clear();
    buffer->epoch = 0;  // Late destructors of open spans become no-ops.
    ++thread_index;
  }

  // Rebase times onto the session start so exported timestamps are small.
  int64_t min_start = INT64_MAX;
  for (const SpanRecord& s : data.spans) min_start = std::min(min_start, s.start_ns);
  if (min_start != INT64_MAX) {
    for (SpanRecord& s : data.spans) {
      s.start_ns -= min_start;
      if (s.end_ns != 0) s.end_ns -= min_start;
    }
  }
  return data;
}

TraceSpan::TraceSpan(const char* name) {
  if (!g_enabled.load(std::memory_order_acquire)) return;
  ThreadBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  const uint64_t session = g_epoch.load(std::memory_order_acquire);
  if (b->epoch != session) {
    // First span of this thread in the session: stale records belong to a
    // session that was already drained (or never will be) — drop them.
    b->spans.clear();
    b->open.clear();
    b->epoch = session;
  }
  index_ = static_cast<int>(b->spans.size());
  epoch_ = session;
  SpanRecord record;
  record.name = name;
  record.start_ns = NowNs();
  record.parent = b->open.empty() ? -1 : b->open.back();
  b->spans.push_back(std::move(record));
  b->open.push_back(index_);
}

TraceSpan::~TraceSpan() {
  if (index_ < 0) return;
  ThreadBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->epoch != epoch_ || index_ >= static_cast<int>(b->spans.size())) {
    return;  // The session was drained while this span was open.
  }
  b->spans[index_].end_ns = NowNs();
  // Scoped lifetimes give stack discipline: this span is the innermost
  // open one. Erase defensively anyway so a surprising destruction order
  // cannot corrupt later parent links.
  if (!b->open.empty() && b->open.back() == index_) {
    b->open.pop_back();
  } else {
    b->open.erase(std::remove(b->open.begin(), b->open.end(), index_),
                  b->open.end());
  }
}

void TraceSpan::SetError(const Status& status) {
  if (index_ < 0) return;
  ThreadBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->epoch != epoch_ || index_ >= static_cast<int>(b->spans.size())) return;
  b->spans[index_].ok = false;
  b->spans[index_].detail = status.ToString();
}

void TraceSpan::SetDetail(std::string detail) {
  if (index_ < 0) return;
  ThreadBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->epoch != epoch_ || index_ >= static_cast<int>(b->spans.size())) return;
  b->spans[index_].detail = std::move(detail);
}

bool TraceData::WellFormed(std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (s.end_ns == 0) return fail("span '" + s.name + "' was never closed");
    if (s.end_ns < s.start_ns) {
      return fail("span '" + s.name + "' ends before it starts");
    }
    if (s.parent >= 0) {
      if (s.parent >= static_cast<int>(spans.size())) {
        return fail("span '" + s.name + "' has an out-of-range parent");
      }
      const SpanRecord& p = spans[s.parent];
      if (p.thread != s.thread) {
        return fail("span '" + s.name + "' is parented across threads");
      }
      if (s.start_ns < p.start_ns || (p.end_ns != 0 && s.end_ns > p.end_ns)) {
        return fail("span '" + s.name + "' escapes its parent '" + p.name + "'");
      }
    }
  }
  return true;
}

namespace {

struct AggregateNode {
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t errors = 0;
  int64_t first_start = INT64_MAX;
  std::map<std::string, AggregateNode> children;
};

void FlattenNode(const std::string& name, const AggregateNode& node, int depth,
                 std::vector<TraceData::AggregateRow>* out) {
  out->push_back({name, depth, node.count, node.total_ns, node.errors});
  // Siblings in execution order (first start time).
  std::vector<const std::pair<const std::string, AggregateNode>*> kids;
  for (const auto& entry : node.children) kids.push_back(&entry);
  std::sort(kids.begin(), kids.end(), [](const auto* a, const auto* b) {
    return a->second.first_start < b->second.first_start;
  });
  for (const auto* kid : kids) {
    FlattenNode(kid->first, kid->second, depth + 1, out);
  }
}

}  // namespace

std::vector<TraceData::AggregateRow> TraceData::Aggregate() const {
  AggregateNode root;
  std::vector<std::string> path;
  for (const SpanRecord& s : spans) {
    // Path of names from the root to this span.
    path.clear();
    for (int at = static_cast<int>(&s - spans.data()); at >= 0;
         at = spans[at].parent) {
      path.push_back(spans[at].name);
    }
    AggregateNode* node = &root;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      node = &node->children[*it];
    }
    ++node->count;
    if (s.end_ns >= s.start_ns) node->total_ns += s.end_ns - s.start_ns;
    if (!s.ok) ++node->errors;
    node->first_start = std::min(node->first_start, s.start_ns);
  }
  std::vector<AggregateRow> rows;
  std::vector<const std::pair<const std::string, AggregateNode>*> roots;
  for (const auto& entry : root.children) roots.push_back(&entry);
  std::sort(roots.begin(), roots.end(), [](const auto* a, const auto* b) {
    return a->second.first_start < b->second.first_start;
  });
  for (const auto* r : roots) FlattenNode(r->first, r->second, 0, &rows);
  return rows;
}

std::string TraceData::ToText() const {
  std::string out;
  for (const AggregateRow& row : Aggregate()) {
    out.append(static_cast<size_t>(row.depth) * 2, ' ');
    out += row.name;
    char buf[96];
    std::snprintf(buf, sizeof(buf), ": count=%lld total=%.3fms",
                  static_cast<long long>(row.count),
                  static_cast<double>(row.total_ns) / 1e6);
    out += buf;
    if (row.errors > 0) {
      std::snprintf(buf, sizeof(buf), " errors=%lld",
                    static_cast<long long>(row.errors));
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

std::string TraceData::ToChromeJson() const {
  std::string out = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += "  {\"name\": \"";
    AppendEscaped(&out, s.name);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                  "\"ts\": %.3f, \"dur\": %.3f",
                  s.thread, static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(std::max<int64_t>(0, s.end_ns - s.start_ns)) /
                      1e3);
    out += buf;
    if (!s.ok || !s.detail.empty()) {
      out += ", \"args\": {\"ok\": ";
      out += s.ok ? "true" : "false";
      out += ", \"detail\": \"";
      AppendEscaped(&out, s.detail);
      out += "\"}";
    }
    out += i + 1 < spans.size() ? "},\n" : "}\n";
  }
  out += "]}\n";
  return out;
}

int64_t TraceData::TotalNanos(const std::string& name) const {
  int64_t total = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == name && s.end_ns >= s.start_ns) total += s.end_ns - s.start_ns;
  }
  return total;
}

int64_t TraceData::CountOf(const std::string& name) const {
  int64_t count = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == name) ++count;
  }
  return count;
}

}  // namespace olap
