#include "common/cancellation.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace olap {
namespace cancel_internal {

namespace {
int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

struct CancelState {
  std::atomic<int> reason{0};
  std::atomic<int64_t> deadline_ns{0};     // 0 = no deadline armed.
  std::atomic<int64_t> deadline_start{0};  // When the deadline was armed.
  std::atomic<int64_t> polls{0};
  std::atomic<int64_t> cancel_after_polls{-1};  // -1 = hook disarmed.
  std::shared_ptr<CancelState> parent;          // Set once, before sharing.

  std::mutex mu;
  std::condition_variable cv;

  // First reason wins; waiters are woken exactly once.
  void Latch(CancelReason r) {
    int expected = 0;
    if (reason.compare_exchange_strong(expected, static_cast<int>(r),
                                       std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  }

  // The poll: counts (when `count`), fires the poll hook, latches an
  // expired deadline, consults the parent. Returns true once stopped.
  bool Check(bool count) {
    if (count) {
      const int64_t p = polls.fetch_add(1, std::memory_order_relaxed) + 1;
      const int64_t trip = cancel_after_polls.load(std::memory_order_relaxed);
      if (trip >= 0 && p >= trip) Latch(CancelReason::kCancelled);
    }
    if (reason.load(std::memory_order_acquire) != 0) return true;
    const int64_t d = deadline_ns.load(std::memory_order_relaxed);
    if (d != 0 && NowNanos() >= d) {
      Latch(CancelReason::kDeadlineExceeded);
      return true;
    }
    // Propagate the count so a CancelAfterPolls hook armed on an ancestor
    // observes polls made through chained children (e.g. a query's own
    // context chained under an external source).
    if (parent != nullptr && parent->Check(count)) {
      Latch(static_cast<CancelReason>(
          parent->reason.load(std::memory_order_acquire)));
      return true;
    }
    return false;
  }
};

}  // namespace cancel_internal

using cancel_internal::CancelState;

bool CancellationToken::ShouldStop() const {
  return state_ != nullptr && state_->Check(/*count=*/true);
}

Status CancellationToken::Poll(const char* what) const {
  if (!ShouldStop()) return Status::Ok();
  std::string msg = what != nullptr ? what : "query";
  switch (reason()) {
    case CancelReason::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg + ": deadline exceeded");
    default:
      return Status::Cancelled(msg + ": cancelled");
  }
}

CancelReason CancellationToken::reason() const {
  if (state_ == nullptr) return CancelReason::kNone;
  return static_cast<CancelReason>(
      state_->reason.load(std::memory_order_acquire));
}

bool CancellationToken::WaitFor(double seconds) const {
  const auto duration = std::chrono::duration<double>(std::max(0.0, seconds));
  if (state_ == nullptr) {
    std::this_thread::sleep_for(duration);
    return false;
  }
  const auto end =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(duration);
  // Slice the wait so a chained parent tripping (which signals the
  // parent's cv, not ours) is still observed promptly — the slice bounds
  // cancellation latency for sleepers at ~2ms.
  constexpr auto kSlice = std::chrono::milliseconds(2);
  while (true) {
    if (state_->Check(/*count=*/true)) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= end) return false;
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->reason.load(std::memory_order_acquire) != 0) return true;
    state_->cv.wait_for(lock, std::min<std::chrono::steady_clock::duration>(
                                  kSlice, end - now));
  }
}

int64_t CancellationToken::polls() const {
  return state_ == nullptr ? 0
                           : state_->polls.load(std::memory_order_relaxed);
}

CancellationSource::CancellationSource()
    : state_(std::make_shared<CancelState>()), token_(state_) {}

CancellationSource::CancellationSource(const CancellationToken& parent)
    : state_(std::make_shared<CancelState>()) {
  state_->parent = parent.state_;
  token_ = CancellationToken(state_);
}

void CancellationSource::RequestCancel() {
  state_->Latch(CancelReason::kCancelled);
}

void CancellationSource::SetDeadlineAfter(double seconds) {
  const int64_t now = cancel_internal::NowNanos();
  state_->deadline_start.store(now, std::memory_order_relaxed);
  state_->deadline_ns.store(
      now + static_cast<int64_t>(std::max(0.0, seconds) * 1e9),
      std::memory_order_relaxed);
}

double CancellationSource::DeadlineFractionElapsed() const {
  const int64_t d = state_->deadline_ns.load(std::memory_order_relaxed);
  if (d == 0) return 0.0;
  const int64_t start = state_->deadline_start.load(std::memory_order_relaxed);
  if (d <= start) return 1.0;
  const double f = static_cast<double>(cancel_internal::NowNanos() - start) /
                   static_cast<double>(d - start);
  return std::max(0.0, f);
}

void CancellationSource::CancelAfterPolls(int64_t n) {
  const int64_t now = state_->polls.load(std::memory_order_relaxed);
  state_->cancel_after_polls.store(now + std::max<int64_t>(1, n),
                                   std::memory_order_relaxed);
}

}  // namespace olap
