#ifndef OLAP_COMMON_CANCELLATION_H_
#define OLAP_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace olap {

// Cooperative cancellation for long-running query work.
//
// A CancellationSource owns the stop signal; the CancellationToken it hands
// out is a cheap copyable view that worker code polls at work-unit
// granularity (a chunk, a row block, a retry attempt). Nothing is ever
// interrupted preemptively — code that observes a stop request unwinds by
// returning Status::Cancelled / Status::DeadlineExceeded, which is what
// keeps every exit path ordinary C++ control flow (pins released by RAII,
// trace spans closed by destructors, no orphaned pool tasks).
//
// Three ways a token can trip:
//   * CancellationSource::RequestCancel()      — explicit, e.g. a client
//                                                disconnect;
//   * a deadline set via SetDeadlineAfter()    — latched on the first poll
//                                                past the deadline;
//   * a chained parent token tripping          — a per-query source built
//                                                over a per-session token.
// The first observed reason wins and is sticky.
//
// Determinism hook: CancelAfterPolls(n) trips the token on the n-th poll.
// Fuzz tests use it to place cancellation at exact work-unit boundaries
// without racing wall-clock timers.
//
// A default-constructed token is the "never cancelled" token: every check
// is a single branch on a null pointer, so unconditioned call sites can
// thread tokens through without a fast-path cost.

enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,
  kDeadlineExceeded = 2,
};

namespace cancel_internal {
struct CancelState;
}  // namespace cancel_internal

class CancellationToken {
 public:
  // The never-cancelled token.
  CancellationToken() = default;

  // True when this token can actually trip (it came from a source).
  bool valid() const { return state_ != nullptr; }

  // Polls the stop signal. Counts one poll (for CancelAfterPolls), latches
  // an expired deadline, and consults the chained parent. Cheap enough for
  // per-work-unit use.
  bool ShouldStop() const;

  // ShouldStop() expressed as a Status: Ok, or Cancelled /
  // DeadlineExceeded once tripped. `what` names the abandoned work in the
  // status message (may be null).
  Status Poll(const char* what = nullptr) const;

  // The sticky reason (kNone while running). Does not count a poll.
  CancelReason reason() const;

  // Blocks for up to `seconds`, waking early when the token trips.
  // Returns true iff a stop was requested. On the never-cancelled token
  // this is a plain uninterruptible sleep.
  bool WaitFor(double seconds) const;

  // Total polls observed so far (0 for the never-cancelled token). Fuzz
  // tests measure a run's poll count to bound CancelAfterPolls.
  int64_t polls() const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(
      std::shared_ptr<cancel_internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<cancel_internal::CancelState> state_;
};

class CancellationSource {
 public:
  CancellationSource();
  // Chains to `parent`: this source's token also stops (with the parent's
  // reason) once `parent` trips. An invalid parent is ignored.
  explicit CancellationSource(const CancellationToken& parent);

  // Trips the token with kCancelled (first reason wins; idempotent).
  void RequestCancel();

  // Arms a deadline `seconds` from now (steady clock). The token trips
  // with kDeadlineExceeded on the first poll or wait past the deadline.
  void SetDeadlineAfter(double seconds);

  // Fraction of the armed deadline already elapsed (0 when no deadline).
  double DeadlineFractionElapsed() const;

  // Deterministic test hook: trip with kCancelled on the n-th poll from
  // now (n <= 0 trips on the next poll).
  void CancelAfterPolls(int64_t n);

  const CancellationToken& token() const { return token_; }

 private:
  std::shared_ptr<cancel_internal::CancelState> state_;
  CancellationToken token_;
};

}  // namespace olap

#endif  // OLAP_COMMON_CANCELLATION_H_
