#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/metrics.h"

namespace olap {

namespace {

// Pool instrumentation. Counters/histograms are process-wide: the shared
// pool serves every query, so per-query attribution happens through
// snapshot deltas (see MetricsRegistry::Snapshot::Delta).
Counter* PoolTasksCounter() {
  static Counter* c = MetricsRegistry::Global().counter("threadpool.tasks");
  return c;
}
Gauge* PoolQueueDepthGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("threadpool.queue_depth");
  return g;
}
Histogram* PoolTaskLatency() {
  static Histogram* h =
      MetricsRegistry::Global().histogram("threadpool.task_seconds");
  return h;
}

void RunInstrumented(const std::function<void()>& task) {
  const auto start = std::chrono::steady_clock::now();
  task();
  const auto end = std::chrono::steady_clock::now();
  PoolTasksCounter()->Increment();
  PoolTaskLatency()->RecordNanos(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
}

// Shared state of one ParallelFor call. Heap-allocated and shared with the
// helper tasks so a helper that wakes up after the caller already returned
// (because the caller drained the range itself) touches valid memory.
struct LoopState {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t n = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  CancellationToken cancel;  // Copied in: helpers may outlive the call site.

  std::mutex mu;
  std::condition_variable all_done;

  void Drain() {
    while (true) {
      int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      // Poll per claimed index: once stopped, the rest of the range is
      // claimed-and-skipped so `done` still reaches n and the caller's
      // wait below terminates (no orphaned tasks, no deadlock).
      if (!cancel.ShouldStop()) (*fn)(i);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    PoolQueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      PoolQueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    RunInstrumented(task);
  }
}

void ThreadPool::ParallelFor(int64_t n, int parallelism,
                             const std::function<void(int64_t)>& fn,
                             const CancellationToken& cancel) {
  if (n <= 0) return;
  static Counter* parallel_for_calls =
      MetricsRegistry::Global().counter("threadpool.parallel_for.calls");
  parallel_for_calls->Increment();
  const int helpers = std::min<int64_t>(
      {static_cast<int64_t>(std::max(0, parallelism - 1)), n - 1,
       static_cast<int64_t>(num_threads())});
  if (helpers <= 0) {
    for (int64_t i = 0; i < n; ++i) {
      if (cancel.ShouldStop()) return;
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;
  state->cancel = cancel;
  for (int h = 0; h < helpers; ++h) {
    Schedule([state] { state->Drain(); });
  }
  state->Drain();  // The caller works too; guarantees forward progress.
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

void ThreadPool::ParallelFor(int64_t n, int parallelism, int64_t work_units,
                             const std::function<void(int64_t)>& fn,
                             const CancellationToken& cancel) {
  static Counter* work_cutoffs =
      MetricsRegistry::Global().counter("threadpool.parallel_for.work_cutoff");
  const int64_t requested = std::max(1, parallelism);
  const int64_t by_work =
      std::max<int64_t>(1, work_units / kMinWorkUnitsPerExecutor);
  const int executors = ClampedExecutors(parallelism, work_units);
  if (executors < requested && by_work < requested) work_cutoffs->Increment();
  ParallelFor(n, executors, fn, cancel);
}

int ThreadPool::ClampedExecutors(int parallelism, int64_t work_units) {
  const int64_t requested = std::max(1, parallelism);
  const int64_t by_work =
      std::max<int64_t>(1, work_units / kMinWorkUnitsPerExecutor);
  return static_cast<int>(
      std::min<int64_t>({requested, HardwareCores(), by_work}));
}

int ThreadPool::AffinityVisibleCores() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int visible = CPU_COUNT(&set);
    if (visible > 0) return visible;
  }
#endif
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

int ThreadPool::HardwareCores() {
  static const int cores = AffinityVisibleCores();
  return cores;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency())));
  return *pool;
}

}  // namespace olap
