#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace olap {

namespace {

// Bucket index for a duration: bucket 0 holds < 1 µs, bucket i holds
// [2^(i-1), 2^i) µs, the last bucket everything larger.
int BucketFor(int64_t nanos) {
  int64_t micros_bound = 1000;  // Upper bound of bucket 0, in ns.
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    if (nanos < micros_bound) return i;
    micros_bound <<= 1;
  }
  return Histogram::kNumBuckets - 1;
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\": ");
}

}  // namespace

void Histogram::RecordNanos(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

int64_t Histogram::BucketUpperNanos(int i) {
  if (i >= kNumBuckets - 1) return INT64_MAX;
  return int64_t{1000} << i;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments are referenced from static call-site
  // caches that may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = GaugeSnapshot{g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->TotalCount();
    hs.sum_nanos = h->TotalNanos();
    hs.buckets.reserve(Histogram::kNumBuckets);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets.push_back(h->BucketCount(i));
    }
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::Snapshot::Delta(
    const Snapshot& before, const Snapshot& after) {
  Snapshot delta;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    int64_t d = value - (it == before.counters.end() ? 0 : it->second);
    if (d != 0) delta.counters[name] = d;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, hs] : after.histograms) {
    HistogramSnapshot d = hs;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      d.count -= it->second.count;
      d.sum_nanos -= it->second.sum_nanos;
      for (size_t i = 0; i < d.buckets.size() && i < it->second.buckets.size();
           ++i) {
        d.buckets[i] -= it->second.buckets[i];
      }
    }
    if (d.count != 0) delta.histograms[name] = std::move(d);
  }
  return delta;
}

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    AppendJsonKey(&out, name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges) {
    out += first ? "\n    " : ",\n    ";
    AppendJsonKey(&out, name);
    char buf[80];
    std::snprintf(buf, sizeof(buf), "{\"value\": %" PRId64 ", \"max\": %" PRId64 "}",
                  g.value, g.max);
    out += buf;
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hs] : histograms) {
    out += first ? "\n    " : ",\n    ";
    AppendJsonKey(&out, name);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %" PRId64 ", \"sum_ms\": %.3f, \"buckets\": [",
                  hs.count, static_cast<double>(hs.sum_nanos) / 1e6);
    out += buf;
    // Trailing zero buckets are elided to keep snapshots readable.
    size_t last = hs.buckets.size();
    while (last > 0 && hs.buckets[last - 1] == 0) --last;
    for (size_t i = 0; i < last; ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%" PRId64, hs.buckets[i]);
      out += buf;
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace olap
