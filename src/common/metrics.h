#ifndef OLAP_COMMON_METRICS_H_
#define OLAP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace olap {

// Process-wide observability primitives. Three instrument kinds:
//
//   Counter    — monotonically increasing event count (one relaxed
//                fetch_add on the hot path);
//   Gauge      — last-value level with a high-watermark (queue depth,
//                peak merge chunks);
//   Histogram  — fixed power-of-two latency buckets plus total count and
//                sum, every slot an independent relaxed atomic.
//
// Instruments live in the process-wide MetricsRegistry and are never
// destroyed, so call sites cache the pointer once:
//
//   static Counter* reads =
//       MetricsRegistry::Global().counter("disk.reads.physical");
//   reads->Increment();
//
// The registry exports named snapshots; Snapshot::Delta subtracts two
// snapshots so a query (or a test) can attribute activity to one window.
// All instruments are thread-safe; snapshots see values at least as fresh
// as every write that happened-before the snapshot call.

class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    RaiseMax(v);
  }
  // Returns the post-add value (so Add(+1) can drive the watermark).
  int64_t Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    RaiseMax(now);
    return now;
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void RaiseMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Latency histogram with fixed exponential buckets: bucket i counts
// samples in [2^(i-1), 2^i) microseconds (bucket 0: < 1 µs; the last
// bucket absorbs everything >= ~134 s). The sum is kept in integer
// nanoseconds so no atomic floating point is needed.
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;

  void RecordNanos(int64_t nanos);
  void RecordSeconds(double seconds) {
    RecordNanos(static_cast<int64_t>(seconds * 1e9));
  }

  int64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  int64_t TotalNanos() const {
    return sum_nanos_.load(std::memory_order_relaxed);
  }
  int64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Inclusive upper bound of bucket i in nanoseconds (INT64_MAX for the
  // last bucket).
  static int64_t BucketUpperNanos(int i);

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_nanos_{0};
};

class MetricsRegistry {
 public:
  // The process-wide registry (created on first use, never destroyed).
  static MetricsRegistry& Global();

  // Returns the instrument registered under `name`, creating it on first
  // use. The pointer stays valid for the life of the process. Registering
  // the same name as two different kinds is a programming error (checked:
  // each kind has its own namespace-free map, so the same string may name
  // at most one counter, one gauge and one histogram — instrument names
  // in this codebase are unique by convention, e.g. "disk.reads.physical").
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  struct HistogramSnapshot {
    int64_t count = 0;
    int64_t sum_nanos = 0;
    std::vector<int64_t> buckets;  // kNumBuckets entries.
  };
  struct GaugeSnapshot {
    int64_t value = 0;
    int64_t max = 0;
  };
  // A point-in-time copy of every registered instrument.
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, GaugeSnapshot> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    int64_t counter_value(const std::string& name) const {
      auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    }
    const HistogramSnapshot* histogram_snapshot(const std::string& name) const {
      auto it = histograms.find(name);
      return it == histograms.end() ? nullptr : &it->second;
    }

    // after - before: counters and histograms subtract (instruments absent
    // from `before` count from zero); gauges carry `after`'s values. Zero
    // counter/histogram deltas are dropped so a delta JSON shows only the
    // instruments the window touched.
    static Snapshot Delta(const Snapshot& before, const Snapshot& after);

    std::string ToJson() const;
  };

  Snapshot TakeSnapshot() const;
  std::string SnapshotJson() const { return TakeSnapshot().ToJson(); }

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace olap

#endif  // OLAP_COMMON_METRICS_H_
