#ifndef OLAP_COMMON_RNG_H_
#define OLAP_COMMON_RNG_H_

#include <cstdint>

namespace olap {

// Deterministic SplitMix64 generator. Used by workload generators and tests
// so every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

}  // namespace olap

#endif  // OLAP_COMMON_RNG_H_
