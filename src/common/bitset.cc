#include "common/bitset.h"

#include <bit>
#include <cassert>

namespace olap {

namespace {
constexpr int kWordBits = 64;
int WordCount(int size) { return (size + kWordBits - 1) / kWordBits; }
}  // namespace

DynamicBitset::DynamicBitset(int size) : size_(size), words_(WordCount(size)) {
  assert(size >= 0);
}

void DynamicBitset::Set(int pos) {
  assert(pos >= 0 && pos < size_);
  words_[pos / kWordBits] |= uint64_t{1} << (pos % kWordBits);
}

void DynamicBitset::Reset(int pos) {
  assert(pos >= 0 && pos < size_);
  words_[pos / kWordBits] &= ~(uint64_t{1} << (pos % kWordBits));
}

void DynamicBitset::Assign(int pos, bool value) {
  if (value) {
    Set(pos);
  } else {
    Reset(pos);
  }
}

bool DynamicBitset::Test(int pos) const {
  assert(pos >= 0 && pos < size_);
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1;
}

void DynamicBitset::SetAll() {
  for (uint64_t& w : words_) w = ~uint64_t{0};
  TrimTail();
}

void DynamicBitset::ResetAll() {
  for (uint64_t& w : words_) w = 0;
}

int DynamicBitset::Count() const {
  int n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

int DynamicBitset::FindNext(int from) const {
  if (from < 0) from = 0;
  if (from >= size_) return -1;
  int word = from / kWordBits;
  uint64_t mask = words_[word] & (~uint64_t{0} << (from % kWordBits));
  while (true) {
    if (mask != 0) {
      int pos = word * kWordBits + std::countr_zero(mask);
      return pos < size_ ? pos : -1;
    }
    ++word;
    if (word >= static_cast<int>(words_.size())) return -1;
    mask = words_[word];
  }
}

int DynamicBitset::FindNextUnset(int from) const {
  if (from < 0) from = 0;
  if (from >= size_) return size_;
  int word = from / kWordBits;
  // Invert and mask below `from`; tail bits beyond size_ are zero in
  // words_, so they read as "clear" here — clamped by the size_ check.
  uint64_t mask = ~words_[word] & (~uint64_t{0} << (from % kWordBits));
  while (true) {
    if (mask != 0) {
      int pos = word * kWordBits + std::countr_zero(mask);
      return pos < size_ ? pos : size_;
    }
    ++word;
    if (word >= static_cast<int>(words_.size())) return size_;
    mask = ~words_[word];
  }
}

std::vector<int> DynamicBitset::ToVector() const {
  std::vector<int> out;
  for (int p = FindFirst(); p >= 0; p = FindNext(p + 1)) out.push_back(p);
  return out;
}

DynamicBitset DynamicBitset::FromVector(int size,
                                        const std::vector<int>& positions) {
  DynamicBitset s(size);
  for (int p : positions) s.Set(p);
  return s;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::Subtract(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynamicBitset::DisjointWith(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int p = FindFirst(); p >= 0; p = FindNext(p + 1)) {
    if (!first) out += ", ";
    out += std::to_string(p);
    first = false;
  }
  out += "}";
  return out;
}

void DynamicBitset::TrimTail() {
  int tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace olap
