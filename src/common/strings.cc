#include "common/strings.h"

#include <cctype>

namespace olap {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace olap
