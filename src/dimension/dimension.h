#ifndef OLAP_DIMENSION_DIMENSION_H_
#define OLAP_DIMENSION_DIMENSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"

namespace olap {

// Identifies a member within one dimension (index into Dimension's member
// table). The root member of every dimension has id 0.
using MemberId = int32_t;
// Identifies a member instance within one varying dimension.
using InstanceId = int32_t;

inline constexpr MemberId kInvalidMember = -1;
inline constexpr InstanceId kInvalidInstance = -1;

// One node of a dimension hierarchy.
struct Member {
  MemberId id = kInvalidMember;
  std::string name;
  MemberId parent = kInvalidMember;  // kInvalidMember for the root.
  int level = 0;                     // Root is level 0.
  // Consolidation weight (Essbase unary operator): the factor this member
  // contributes to its parent's roll-up. +1 add (default), -1 subtract
  // (e.g. COGS under Margin), 0 ignore (~), or any scale factor.
  double weight = 1.0;
  std::vector<MemberId> children;

  bool is_leaf() const { return children.empty(); }
};

// An *instance* of a leaf member of a varying dimension (Sec. 2 of the
// paper): the same member under a particular root-to-leaf path, valid over
// a subset of the parameter dimension's leaf members ("moments").
//
// E.g. member Joe reparented over time yields instances FTE/Joe, PTE/Joe,
// Contractor/Joe; their validity sets are pairwise disjoint.
struct MemberInstance {
  InstanceId id = kInvalidInstance;
  MemberId member = kInvalidMember;  // The leaf member this instantiates.
  MemberId parent = kInvalidMember;  // Parent defining this instance's path.
  DynamicBitset validity;            // Over parameter-dimension leaf ordinals.

  // "FTE/Joe"-style display name; computed by Dimension.
  std::string qualified_name;
};

// The role a dimension plays in a cube.
enum class DimensionKind {
  kRegular,   // Ordinary hierarchy dimension (Organization, Location, ...).
  kParameter, // Drives changes in varying dimensions (Time, Location, ...).
  kMeasure,   // Holds measures (Salary, Benefits, ...).
};

// A dimension: a named hierarchy of members, optionally *varying* — i.e.,
// its leaf members may be reclassified under different parents as a function
// of a parameter dimension, producing member instances with validity sets.
//
// Usage:
//   Dimension org("Organization");
//   MemberId fte = org.AddChildOfRoot("FTE");
//   MemberId joe = org.AddMember("Joe", fte);
//   org.MakeVarying(/*parameter_leaf_count=*/12, /*ordered=*/true);
//   org.ApplyChange(joe, pte, /*moment=*/2);   // Joe -> PTE from March on.
//
// A Dimension is a value type (copyable); the what-if Split operator works
// on copies.
class Dimension {
 public:
  explicit Dimension(std::string name, DimensionKind kind = DimensionKind::kRegular);

  const std::string& name() const { return name_; }
  DimensionKind kind() const { return kind_; }

  // --- Hierarchy construction -------------------------------------------

  // Adds a member under `parent`. Names must be unique within the dimension.
  // In a varying dimension a new leaf automatically receives one instance
  // valid at every moment. `weight` is the consolidation factor the member
  // contributes to its parent's roll-up (see Member::weight).
  Result<MemberId> AddMember(std::string name, MemberId parent,
                             double weight = 1.0);
  Result<MemberId> AddChildOfRoot(std::string name, double weight = 1.0);

  // Adds a member that is *meant to become inner* (a new department, not a
  // new employee): in a varying dimension no instance is created for it, so
  // it contributes no axis positions until leaves are added beneath it.
  // Identical to AddMember for non-varying dimensions.
  Result<MemberId> AddInnerMember(std::string name, MemberId parent,
                                  double weight = 1.0);

  // The product of consolidation weights along the path from `ancestor`
  // (exclusive) down to `m` (inclusive): how one unit at `m` shows up in
  // `ancestor`'s roll-up. 1.0 when m == ancestor.
  double PathWeight(MemberId m, MemberId ancestor) const;

  // --- Hierarchy queries ---------------------------------------------------

  MemberId root() const { return 0; }
  int num_members() const { return static_cast<int>(members_.size()); }
  const Member& member(MemberId id) const { return members_[id]; }

  // Case-insensitive lookup by name.
  Result<MemberId> FindMember(std::string_view name) const;

  // True if `m` is a strict or non-strict descendant of `ancestor`.
  bool IsDescendantOrSelf(MemberId m, MemberId ancestor) const;

  // Leaf members under `m` (including `m` itself when it is a leaf),
  // in depth-first order.
  std::vector<MemberId> LeavesUnder(MemberId m) const;

  // All members whose level equals `level` (root = 0), DFS order.
  std::vector<MemberId> MembersAtLevel(int level) const;
  int max_level() const;

  // Members counted bottom-up: Levels(0) are leaves (Essbase convention).
  std::vector<MemberId> MembersAtDepthFromLeaf(int depth_from_leaf) const;

  // Optional level names ("Region", "State") for MDX paths like
  // Location.Region.State.Members. Root is level 0.
  void SetLevelName(int level, std::string name);
  // Level with the given name, or -1.
  int FindLevelByName(std::string_view name) const;
  // All configured level names, indexed by level (may be shorter than
  // max_level()+1; unnamed levels are empty strings).
  const std::vector<std::string>& level_names() const { return level_names_; }

  // All leaves of the dimension, DFS order. The i-th element is the leaf
  // with *leaf ordinal* i; leaf ordinals are the coordinates used by cube
  // storage and by validity sets of dimensions varying over this one.
  const std::vector<MemberId>& Leaves() const;
  int num_leaves() const { return static_cast<int>(Leaves().size()); }
  // Leaf ordinal of `m`, or -1 when `m` is not a leaf.
  int LeafOrdinal(MemberId m) const;
  MemberId LeafAt(int ordinal) const { return Leaves()[ordinal]; }

  // "Organization/FTE/Joe"-style path (excluding the root's name when
  // `include_root` is false).
  std::string PathName(MemberId m, bool include_root = false) const;

  // Essbase-style outline rendering: one line per member, indented by
  // level, with consolidation operators and (for varying dimensions) the
  // instances and validity sets of changing members. Example:
  //   Organization  (varying, ordered parameter, 12 moments)
  //     FTE
  //       Joe  {FTE/Joe @ {0}, PTE/Joe @ {1}, ...}
  //       Lisa
  //     PTE (-)
  std::string OutlineString() const;

  // --- Varying-dimension support -----------------------------------------

  // Declares this dimension varying over a parameter dimension with
  // `parameter_leaf_count` leaf members ("moments"). `ordered` mirrors the
  // paper's ordered/unordered parameter dimensions (Time vs. Location).
  // Every existing leaf member receives one instance valid at all moments.
  Status MakeVarying(int parameter_leaf_count, bool ordered);

  bool is_varying() const { return parameter_leaf_count_ > 0; }
  bool parameter_is_ordered() const { return ordered_parameter_; }
  int parameter_leaf_count() const { return parameter_leaf_count_; }

  // A *legal structural change* (Definition 3.1): from `moment` onwards,
  // leaf `m` is a child of `new_parent`. Moments >= `moment` currently
  // assigned to other instances of `m` move to the (possibly new) instance
  // under `new_parent`; an existing instance with the same path is reused.
  // Requires an ordered parameter dimension.
  Status ApplyChange(MemberId m, MemberId new_parent, int moment);

  // Unordered-parameter variant: reassigns exactly `moments` to the
  // instance of `m` under `new_parent`.
  Status ApplyChangeAt(MemberId m, MemberId new_parent,
                       const DynamicBitset& moments);

  // Removes `moments` from every instance of `m`: the member has no valid
  // instance there at all (e.g. the paper's Joe, absent in May). Cube cells
  // for those combinations are meaningless (⊥).
  Status Deactivate(MemberId m, const DynamicBitset& moments);

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const MemberInstance& instance(InstanceId id) const { return instances_[id]; }
  const std::vector<MemberInstance>& instances() const { return instances_; }

  // Instances of leaf `m`, in creation order.
  std::vector<InstanceId> InstancesOf(MemberId m) const;

  // The unique instance d_t of `m` valid at `moment`, or kInvalidInstance.
  InstanceId InstanceValidAt(MemberId m, int moment) const;

  // Finds the instance of `m` whose path parent is `parent`.
  InstanceId FindInstance(MemberId m, MemberId parent) const;

  // Leaf members with more than one instance ("changing"/varying members).
  std::vector<MemberId> ChangingMembers() const;

  // Overrides an instance's validity set (used by the whatif Relocate /
  // Split operators when materialising an output cube's metadata).
  void SetInstanceValidity(InstanceId id, DynamicBitset validity);

  // Adds a bare instance of `m` under `parent` with the given validity,
  // without disturbing other instances (used by Split). The caller is
  // responsible for keeping validity sets disjoint.
  Result<InstanceId> AddInstance(MemberId m, MemberId parent,
                                 DynamicBitset validity);

  // Deserialization support: marks the dimension varying and installs an
  // explicit instance table (ids are assigned by position; qualified names
  // are recomputed). The dimension must not already be varying; members
  // and parents must exist and validity universes must match.
  Status RestoreVarying(int parameter_leaf_count, bool ordered,
                        std::vector<MemberInstance> instances);

  // --- Axis positions -------------------------------------------------------
  //
  // A cube stores leaf cells over *positions*: for a varying dimension the
  // positions are its member instances (one row per instance, as in the
  // paper's Fig. 2), for any other dimension they are its leaf members.

  int num_positions() const {
    return is_varying() ? num_instances() : num_leaves();
  }
  // The leaf member occupying a position.
  MemberId PositionMember(int pos) const {
    return is_varying() ? instances_[pos].member : Leaves()[pos];
  }
  // The instance occupying a position (kInvalidInstance if not varying).
  InstanceId PositionInstance(int pos) const {
    return is_varying() ? pos : kInvalidInstance;
  }
  // Display label of a position ("PTE/Joe" or "Jan").
  std::string PositionLabel(int pos) const;

 private:
  MemberId AddMemberInternal(std::string name, MemberId parent, double weight);
  void InvalidateLeafCache();
  std::string QualifiedName(MemberId m, MemberId parent) const;

  std::string name_;
  DimensionKind kind_;
  std::vector<Member> members_;
  std::unordered_map<std::string, MemberId> by_lower_name_;
  std::vector<std::string> level_names_;  // Indexed by level; may be short.

  int parameter_leaf_count_ = 0;  // 0 => not varying.
  bool ordered_parameter_ = false;
  std::vector<MemberInstance> instances_;

  mutable bool leaf_cache_valid_ = false;
  mutable std::vector<MemberId> leaf_cache_;
  mutable std::vector<int> leaf_ordinal_;  // MemberId -> ordinal or -1.
};

}  // namespace olap

#endif  // OLAP_DIMENSION_DIMENSION_H_
