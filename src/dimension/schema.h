#ifndef OLAP_DIMENSION_SCHEMA_H_
#define OLAP_DIMENSION_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dimension/dimension.h"

namespace olap {

// The multidimensional outline of a cube: an ordered list of dimensions plus
// the wiring between varying dimensions and the parameter dimensions that
// drive their changes (Definition 2.1).
//
// Usage:
//   Schema schema;
//   int time = schema.AddDimension(Dimension("Time", DimensionKind::kParameter));
//   int org  = schema.AddDimension(Dimension("Organization"));
//   ... build hierarchies via schema.mutable_dimension(...) ...
//   schema.BindVarying(org, time, /*ordered=*/true);
//
// A Schema is a value type; what-if operators copy and edit it.
class Schema {
 public:
  Schema() = default;

  // Adds a dimension; returns its index. Dimension names must be unique.
  int AddDimension(Dimension dim);

  int num_dimensions() const { return static_cast<int>(dims_.size()); }
  const Dimension& dimension(int i) const { return dims_[i]; }
  Dimension* mutable_dimension(int i) { return &dims_[i]; }

  // Case-insensitive dimension lookup.
  Result<int> FindDimension(std::string_view name) const;

  // Declares `varying_dim` to vary over `parameter_dim` (Definition 2.1).
  // The parameter dimension's hierarchy must be complete at bind time: its
  // leaf count fixes the universe of every validity set. `ordered` follows
  // the paper (Time is ordered, Location is not).
  Status BindVarying(int varying_dim, int parameter_dim, bool ordered);

  // Deserialization support: records the varying->parameter link for a
  // dimension that is ALREADY varying (restored via
  // Dimension::RestoreVarying). Validates that the parameter dimension's
  // leaf count matches the restored validity universe.
  Status RestoreVaryingLink(int varying_dim, int parameter_dim);

  // Index of the parameter dimension driving `dim`, or -1.
  int parameter_of(int dim) const { return parameter_of_[dim]; }
  bool is_varying(int dim) const { return parameter_of_[dim] >= 0; }

  // Indices of all varying dimensions, ascending.
  std::vector<int> VaryingDimensions() const;

  // Index of the first dimension with kind kMeasure, or -1.
  int MeasureDimension() const;

  // Number of axis positions per dimension, in dimension order
  // (the extents of the cube's leaf-cell array).
  std::vector<int> PositionExtents() const;

 private:
  std::vector<Dimension> dims_;
  std::vector<int> parameter_of_;  // Per dimension; -1 when not varying.
};

}  // namespace olap

#endif  // OLAP_DIMENSION_SCHEMA_H_
