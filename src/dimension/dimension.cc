#include "dimension/dimension.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "common/value.h"

namespace olap {

Dimension::Dimension(std::string name, DimensionKind kind)
    : name_(std::move(name)), kind_(kind) {
  // The root member carries the dimension's own name (Essbase convention).
  AddMemberInternal(name_, kInvalidMember, 1.0);
}

MemberId Dimension::AddMemberInternal(std::string name, MemberId parent,
                                      double weight) {
  Member m;
  m.id = static_cast<MemberId>(members_.size());
  m.name = std::move(name);
  m.parent = parent;
  m.level = parent == kInvalidMember ? 0 : members_[parent].level + 1;
  m.weight = weight;
  by_lower_name_[ToLower(m.name)] = m.id;
  if (parent != kInvalidMember) members_[parent].children.push_back(m.id);
  members_.push_back(std::move(m));
  InvalidateLeafCache();
  return members_.back().id;
}

Result<MemberId> Dimension::AddMember(std::string name, MemberId parent,
                                      double weight) {
  if (parent < 0 || parent >= num_members()) {
    return Status::InvalidArgument("bad parent id for member '" + name + "'");
  }
  if (by_lower_name_.count(ToLower(name)) > 0) {
    return Status::AlreadyExists("member '" + name + "' already exists in dimension '" +
                                 name_ + "'");
  }
  // Adding a child to a leaf that already holds data positions would shift
  // the position meaning of a varying dimension; we allow it at metadata
  // build time (before any instance of `parent` exists as a leaf-instance).
  if (is_varying()) {
    for (const MemberInstance& inst : instances_) {
      if (inst.member == parent) {
        return Status::FailedPrecondition(
            "cannot turn instanced leaf '" + members_[parent].name +
            "' into an inner member of varying dimension '" + name_ + "'");
      }
    }
  }
  MemberId id = AddMemberInternal(std::move(name), parent, weight);
  // In a varying dimension every new leaf starts with a single instance that
  // is valid at every moment (the paper's initial, unchanged structure).
  if (is_varying()) {
    MemberInstance inst;
    inst.id = static_cast<InstanceId>(instances_.size());
    inst.member = id;
    inst.parent = members_[id].parent;
    inst.validity = DynamicBitset(parameter_leaf_count_);
    inst.validity.SetAll();
    inst.qualified_name = QualifiedName(id, inst.parent);
    instances_.push_back(std::move(inst));
  }
  return id;
}

Result<MemberId> Dimension::AddChildOfRoot(std::string name, double weight) {
  return AddMember(std::move(name), root(), weight);
}

Result<MemberId> Dimension::AddInnerMember(std::string name, MemberId parent,
                                           double weight) {
  if (parent < 0 || parent >= num_members()) {
    return Status::InvalidArgument("bad parent id for member '" + name + "'");
  }
  if (by_lower_name_.count(ToLower(name)) > 0) {
    return Status::AlreadyExists("member '" + name + "' already exists in dimension '" +
                                 name_ + "'");
  }
  if (is_varying()) {
    for (const MemberInstance& inst : instances_) {
      if (inst.member == parent) {
        return Status::FailedPrecondition(
            "cannot turn instanced leaf '" + members_[parent].name +
            "' into an inner member of varying dimension '" + name_ + "'");
      }
    }
  }
  return AddMemberInternal(std::move(name), parent, weight);
}

double Dimension::PathWeight(MemberId m, MemberId ancestor) const {
  double weight = 1.0;
  for (MemberId cur = m; cur != ancestor && cur != kInvalidMember;
       cur = members_[cur].parent) {
    weight *= members_[cur].weight;
  }
  return weight;
}

Result<MemberId> Dimension::FindMember(std::string_view name) const {
  auto it = by_lower_name_.find(ToLower(name));
  if (it == by_lower_name_.end()) {
    return Status::NotFound("no member '" + std::string(name) + "' in dimension '" +
                            name_ + "'");
  }
  return it->second;
}

bool Dimension::IsDescendantOrSelf(MemberId m, MemberId ancestor) const {
  for (MemberId cur = m; cur != kInvalidMember; cur = members_[cur].parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

std::vector<MemberId> Dimension::LeavesUnder(MemberId m) const {
  std::vector<MemberId> out;
  std::vector<MemberId> stack = {m};
  while (!stack.empty()) {
    MemberId cur = stack.back();
    stack.pop_back();
    const Member& mem = members_[cur];
    if (mem.is_leaf()) {
      out.push_back(cur);
    } else {
      // Push children reversed so DFS emits them in insertion order.
      for (auto it = mem.children.rbegin(); it != mem.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return out;
}

std::vector<MemberId> Dimension::MembersAtLevel(int level) const {
  std::vector<MemberId> out;
  std::vector<MemberId> stack = {root()};
  while (!stack.empty()) {
    MemberId cur = stack.back();
    stack.pop_back();
    const Member& mem = members_[cur];
    if (mem.level == level) out.push_back(cur);
    for (auto it = mem.children.rbegin(); it != mem.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

int Dimension::max_level() const {
  int mx = 0;
  for (const Member& m : members_) mx = std::max(mx, m.level);
  return mx;
}

std::vector<MemberId> Dimension::MembersAtDepthFromLeaf(int depth_from_leaf) const {
  // MDX Levels(0) = leaf level. We interpret "depth from leaf" against the
  // deepest level of the hierarchy, matching ragged hierarchies loosely:
  // a member qualifies when max_level() - member.level == depth_from_leaf,
  // or when depth_from_leaf == 0 and the member is a leaf.
  std::vector<MemberId> out;
  int deepest = max_level();
  std::vector<MemberId> stack = {root()};
  while (!stack.empty()) {
    MemberId cur = stack.back();
    stack.pop_back();
    const Member& mem = members_[cur];
    bool match = depth_from_leaf == 0 ? mem.is_leaf()
                                      : (deepest - mem.level) == depth_from_leaf;
    if (match) out.push_back(cur);
    for (auto it = mem.children.rbegin(); it != mem.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

void Dimension::SetLevelName(int level, std::string name) {
  assert(level >= 0);
  if (static_cast<int>(level_names_.size()) <= level) {
    level_names_.resize(level + 1);
  }
  level_names_[level] = std::move(name);
}

int Dimension::FindLevelByName(std::string_view name) const {
  for (size_t i = 0; i < level_names_.size(); ++i) {
    if (EqualsIgnoreCase(level_names_[i], name)) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<MemberId>& Dimension::Leaves() const {
  if (!leaf_cache_valid_) {
    leaf_cache_ = LeavesUnder(root());
    leaf_ordinal_.assign(members_.size(), -1);
    for (size_t i = 0; i < leaf_cache_.size(); ++i) {
      leaf_ordinal_[leaf_cache_[i]] = static_cast<int>(i);
    }
    leaf_cache_valid_ = true;
  }
  return leaf_cache_;
}

int Dimension::LeafOrdinal(MemberId m) const {
  Leaves();  // Ensure cache.
  return leaf_ordinal_[m];
}

std::string Dimension::PathName(MemberId m, bool include_root) const {
  std::vector<std::string> parts;
  for (MemberId cur = m; cur != kInvalidMember; cur = members_[cur].parent) {
    if (cur == root() && !include_root) break;
    parts.push_back(members_[cur].name);
  }
  std::reverse(parts.begin(), parts.end());
  return Join(parts, "/");
}

std::string Dimension::OutlineString() const {
  std::string out = name_;
  if (is_varying()) {
    out += "  (varying, ";
    out += ordered_parameter_ ? "ordered" : "unordered";
    out += " parameter, " + std::to_string(parameter_leaf_count_) + " moments)";
  }
  out += "\n";
  // Preorder walk, skipping the root (already printed as the header).
  std::vector<MemberId> stack;
  const Member& root_member = members_[root()];
  for (auto it = root_member.children.rbegin(); it != root_member.children.rend();
       ++it) {
    stack.push_back(*it);
  }
  while (!stack.empty()) {
    MemberId cur = stack.back();
    stack.pop_back();
    const Member& m = members_[cur];
    out.append(static_cast<size_t>(m.level) * 2, ' ');
    out += m.name;
    if (m.weight == -1.0) {
      out += " (-)";
    } else if (m.weight == 0.0) {
      out += " (~)";
    } else if (m.weight != 1.0) {
      out += " (*" + CellValue(m.weight).ToString() + ")";
    }
    if (is_varying() && m.is_leaf()) {
      std::vector<InstanceId> insts = InstancesOf(cur);
      if (insts.size() > 1) {
        out += "  {";
        for (size_t i = 0; i < insts.size(); ++i) {
          if (i) out += ", ";
          out += instances_[insts[i]].qualified_name + " @ " +
                 instances_[insts[i]].validity.ToString();
        }
        out += "}";
      }
    }
    out += "\n";
    for (auto it = m.children.rbegin(); it != m.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

Status Dimension::MakeVarying(int parameter_leaf_count, bool ordered) {
  if (is_varying()) {
    return Status::FailedPrecondition("dimension '" + name_ + "' is already varying");
  }
  if (parameter_leaf_count <= 0) {
    return Status::InvalidArgument("parameter_leaf_count must be positive");
  }
  parameter_leaf_count_ = parameter_leaf_count;
  ordered_parameter_ = ordered;
  // Existing leaves each get a single everywhere-valid instance.
  for (MemberId leaf : Leaves()) {
    MemberInstance inst;
    inst.id = static_cast<InstanceId>(instances_.size());
    inst.member = leaf;
    inst.parent = members_[leaf].parent;
    inst.validity = DynamicBitset(parameter_leaf_count_);
    inst.validity.SetAll();
    inst.qualified_name = QualifiedName(leaf, inst.parent);
    instances_.push_back(std::move(inst));
  }
  return Status::Ok();
}

Status Dimension::ApplyChange(MemberId m, MemberId new_parent, int moment) {
  if (!is_varying()) {
    return Status::FailedPrecondition("dimension '" + name_ + "' is not varying");
  }
  if (!ordered_parameter_) {
    return Status::FailedPrecondition(
        "ApplyChange requires an ordered parameter dimension; use ApplyChangeAt");
  }
  if (moment < 0 || moment >= parameter_leaf_count_) {
    return Status::OutOfRange("moment out of range");
  }
  DynamicBitset suffix(parameter_leaf_count_);
  for (int t = moment; t < parameter_leaf_count_; ++t) suffix.Set(t);
  return ApplyChangeAt(m, new_parent, suffix);
}

Status Dimension::ApplyChangeAt(MemberId m, MemberId new_parent,
                                const DynamicBitset& moments) {
  if (!is_varying()) {
    return Status::FailedPrecondition("dimension '" + name_ + "' is not varying");
  }
  if (m < 0 || m >= num_members() || !members_[m].is_leaf()) {
    return Status::InvalidArgument("change target must be an existing leaf member");
  }
  if (new_parent < 0 || new_parent >= num_members() || members_[new_parent].is_leaf()) {
    return Status::InvalidArgument("new parent must be an existing non-leaf member");
  }
  if (moments.size() != parameter_leaf_count_) {
    return Status::InvalidArgument("moment set has wrong universe size");
  }

  // Remove the reassigned moments from every instance of m...
  for (MemberInstance& inst : instances_) {
    if (inst.member == m) inst.validity.Subtract(moments);
  }
  // ...and give them to the instance under new_parent. An instance with the
  // identical root-to-leaf path is reused (Sec. 3.1: "the root-to-leaf path
  // of this new instance of d is identical to that of d1, so it is treated
  // as d1").
  InstanceId target = FindInstance(m, new_parent);
  if (target == kInvalidInstance) {
    MemberInstance inst;
    inst.id = static_cast<InstanceId>(instances_.size());
    inst.member = m;
    inst.parent = new_parent;
    inst.validity = DynamicBitset(parameter_leaf_count_);
    inst.qualified_name = QualifiedName(m, new_parent);
    instances_.push_back(std::move(inst));
    target = instances_.back().id;
  }
  instances_[target].validity |= moments;
  return Status::Ok();
}

Status Dimension::Deactivate(MemberId m, const DynamicBitset& moments) {
  if (!is_varying()) {
    return Status::FailedPrecondition("dimension '" + name_ + "' is not varying");
  }
  if (moments.size() != parameter_leaf_count_) {
    return Status::InvalidArgument("moment set has wrong universe size");
  }
  for (MemberInstance& inst : instances_) {
    if (inst.member == m) inst.validity.Subtract(moments);
  }
  return Status::Ok();
}

std::vector<InstanceId> Dimension::InstancesOf(MemberId m) const {
  std::vector<InstanceId> out;
  for (const MemberInstance& inst : instances_) {
    if (inst.member == m) out.push_back(inst.id);
  }
  return out;
}

InstanceId Dimension::InstanceValidAt(MemberId m, int moment) const {
  for (const MemberInstance& inst : instances_) {
    if (inst.member == m && inst.validity.Test(moment)) return inst.id;
  }
  return kInvalidInstance;
}

InstanceId Dimension::FindInstance(MemberId m, MemberId parent) const {
  for (const MemberInstance& inst : instances_) {
    if (inst.member == m && inst.parent == parent) return inst.id;
  }
  return kInvalidInstance;
}

std::vector<MemberId> Dimension::ChangingMembers() const {
  std::vector<MemberId> out;
  std::vector<int> count(members_.size(), 0);
  for (const MemberInstance& inst : instances_) ++count[inst.member];
  for (MemberId id = 0; id < num_members(); ++id) {
    if (count[id] > 1) out.push_back(id);
  }
  return out;
}

void Dimension::SetInstanceValidity(InstanceId id, DynamicBitset validity) {
  assert(id >= 0 && id < num_instances());
  assert(validity.size() == parameter_leaf_count_);
  instances_[id].validity = std::move(validity);
}

Result<InstanceId> Dimension::AddInstance(MemberId m, MemberId parent,
                                          DynamicBitset validity) {
  if (!is_varying()) {
    return Status::FailedPrecondition("dimension '" + name_ + "' is not varying");
  }
  if (m < 0 || m >= num_members() || !members_[m].is_leaf()) {
    return Status::InvalidArgument("instance member must be an existing leaf");
  }
  if (FindInstance(m, parent) != kInvalidInstance) {
    return Status::AlreadyExists("instance with this path already exists");
  }
  MemberInstance inst;
  inst.id = static_cast<InstanceId>(instances_.size());
  inst.member = m;
  inst.parent = parent;
  inst.validity = std::move(validity);
  inst.qualified_name = QualifiedName(m, parent);
  instances_.push_back(std::move(inst));
  return instances_.back().id;
}

Status Dimension::RestoreVarying(int parameter_leaf_count, bool ordered,
                                 std::vector<MemberInstance> instances) {
  if (is_varying()) {
    return Status::FailedPrecondition("dimension '" + name_ + "' is already varying");
  }
  if (parameter_leaf_count <= 0) {
    return Status::InvalidArgument("parameter_leaf_count must be positive");
  }
  for (size_t i = 0; i < instances.size(); ++i) {
    MemberInstance& inst = instances[i];
    if (inst.member < 0 || inst.member >= num_members() ||
        !members_[inst.member].is_leaf()) {
      return Status::InvalidArgument("restored instance member is not a leaf");
    }
    if (inst.parent < 0 || inst.parent >= num_members()) {
      return Status::InvalidArgument("restored instance parent out of range");
    }
    if (inst.validity.size() != parameter_leaf_count) {
      return Status::InvalidArgument("restored validity set has wrong universe");
    }
    inst.id = static_cast<InstanceId>(i);
    inst.qualified_name = QualifiedName(inst.member, inst.parent);
  }
  parameter_leaf_count_ = parameter_leaf_count;
  ordered_parameter_ = ordered;
  instances_ = std::move(instances);
  return Status::Ok();
}

std::string Dimension::PositionLabel(int pos) const {
  if (is_varying()) return instances_[pos].qualified_name;
  return members_[Leaves()[pos]].name;
}

std::string Dimension::QualifiedName(MemberId m, MemberId parent) const {
  if (parent == kInvalidMember || parent == root()) return members_[m].name;
  return PathName(parent) + "/" + members_[m].name;
}

void Dimension::InvalidateLeafCache() { leaf_cache_valid_ = false; }

}  // namespace olap
