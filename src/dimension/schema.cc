#include "dimension/schema.h"

#include "common/strings.h"

namespace olap {

int Schema::AddDimension(Dimension dim) {
  dims_.push_back(std::move(dim));
  parameter_of_.push_back(-1);
  return num_dimensions() - 1;
}

Result<int> Schema::FindDimension(std::string_view name) const {
  for (int i = 0; i < num_dimensions(); ++i) {
    if (EqualsIgnoreCase(dims_[i].name(), name)) return i;
  }
  return Status::NotFound("no dimension named '" + std::string(name) + "'");
}

Status Schema::BindVarying(int varying_dim, int parameter_dim, bool ordered) {
  if (varying_dim < 0 || varying_dim >= num_dimensions() || parameter_dim < 0 ||
      parameter_dim >= num_dimensions()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  if (varying_dim == parameter_dim) {
    return Status::InvalidArgument("a dimension cannot vary over itself");
  }
  OLAP_RETURN_IF_ERROR(dims_[varying_dim].MakeVarying(
      dims_[parameter_dim].num_leaves(), ordered));
  parameter_of_[varying_dim] = parameter_dim;
  return Status::Ok();
}

Status Schema::RestoreVaryingLink(int varying_dim, int parameter_dim) {
  if (varying_dim < 0 || varying_dim >= num_dimensions() || parameter_dim < 0 ||
      parameter_dim >= num_dimensions() || varying_dim == parameter_dim) {
    return Status::InvalidArgument("bad varying/parameter dimension indices");
  }
  const Dimension& dim = dims_[varying_dim];
  if (!dim.is_varying()) {
    return Status::FailedPrecondition("dimension is not varying");
  }
  if (dim.parameter_leaf_count() != dims_[parameter_dim].num_leaves()) {
    return Status::InvalidArgument(
        "validity universe does not match the parameter dimension");
  }
  parameter_of_[varying_dim] = parameter_dim;
  return Status::Ok();
}

std::vector<int> Schema::VaryingDimensions() const {
  std::vector<int> out;
  for (int i = 0; i < num_dimensions(); ++i) {
    if (is_varying(i)) out.push_back(i);
  }
  return out;
}

int Schema::MeasureDimension() const {
  for (int i = 0; i < num_dimensions(); ++i) {
    if (dims_[i].kind() == DimensionKind::kMeasure) return i;
  }
  return -1;
}

std::vector<int> Schema::PositionExtents() const {
  std::vector<int> out(num_dimensions());
  for (int i = 0; i < num_dimensions(); ++i) out[i] = dims_[i].num_positions();
  return out;
}

}  // namespace olap
