#ifndef OLAP_WHATIF_PERSPECTIVE_H_
#define OLAP_WHATIF_PERSPECTIVE_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "dimension/dimension.h"

namespace olap {

// The semantics of a negative-scenario what-if query (Sec. 3.3):
// which structure is imposed where.
enum class Semantics {
  kStatic,            // Keep only the structures at the perspective moments.
  kForward,           // Impose structure at p_i onto [p_i, p_{i+1}).
  kExtendedForward,   // Forward, plus impose structure at Pmin onto the past.
  kBackward,          // Forward with moments ordered descending.
  kExtendedBackward,  // Extended forward, descending.
};

// How non-leaf (derived) cells of the output cube are computed (Sec. 3.3):
// non-visual retains the input cube's derived values; visual re-evaluates
// the rules on the transformed cube.
enum class EvalMode {
  kNonVisual,
  kVisual,
};

const char* SemanticsName(Semantics s);
const char* EvalModeName(EvalMode m);

// A set of perspectives: leaf-member ordinals ("moments") of the parameter
// dimension, kept sorted ascending and deduplicated.
class Perspectives {
 public:
  Perspectives() = default;
  // `moments` are parameter-dimension leaf ordinals; duplicates are dropped.
  explicit Perspectives(std::vector<int> moments);

  bool empty() const { return moments_.empty(); }
  int size() const { return static_cast<int>(moments_.size()); }
  const std::vector<int>& moments() const { return moments_; }
  int min() const { return moments_.front(); }

  // The latest perspective <= t (max of P_t in the paper's notation),
  // or -1 when t precedes every perspective.
  int GoverningPerspective(int t) const;

  // The perspective range [p_i, p_{i+1}) containing p_i; for the last
  // perspective the range extends to `universe` (exclusive).
  int RangeEnd(int perspective_index, int universe) const;

  std::string ToString() const;

 private:
  std::vector<int> moments_;
};

// Computes Stretch(d) (Definition 4.3): the moments t >= Pmin whose
// governing perspective lies in `vs_in` — i.e. the union of the intervals
// [p_i, p_{i+1}) for which d was valid at p_i.
DynamicBitset Stretch(const DynamicBitset& vs_in, const Perspectives& p);

// The Φ operator (Sec. 4.2): transforms the input validity set of one
// member instance into its output validity set under the given semantics.
//
//   static:            VSout = VSin when VSin ∩ P ≠ ∅, else ∅.
//   forward:           VSout = Stretch ∪ {t < Pmin | t ∈ VSin},
//                      or ∅ when Stretch = ∅.
//   extended forward:  as forward, but all t < Pmin go to the instance
//                      valid at Pmin.
//   backward variants: the forward variants on the reversed moment axis.
//
// Requires a non-empty perspective set.
DynamicBitset Phi(const DynamicBitset& vs_in, const Perspectives& p,
                  Semantics semantics);

// Applies Phi to every instance of `dim`, returning output validity sets
// indexed by InstanceId. Instances of members untouched by any perspective
// (Stretch empty / no overlap) come back with empty validity sets — they
// are not active in the output cube (Definition 3.4). Each result is also
// masked by the member's overall activity, because Definitions 3.3/3.4
// exclude "those moments t for which no instance d_t exists in Cin".
std::vector<DynamicBitset> TransformValiditySets(const Dimension& dim,
                                                 const Perspectives& p,
                                                 Semantics semantics);

}  // namespace olap

#endif  // OLAP_WHATIF_PERSPECTIVE_H_
