#ifndef OLAP_WHATIF_DELTA_H_
#define OLAP_WHATIF_DELTA_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "agg/aggregate_cache.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "cube/cube.h"
#include "whatif/scenario_algebra.h"

namespace olap {

// ---------------------------------------------------------------------------
// Delta propagation: incremental maintenance of perspective cubes
// ---------------------------------------------------------------------------
//
// Production cubes are not static. A stream of cell writes arrives as a
// DeltaBatch; IncrementalScenario keeps a computed perspective cube alive
// across such batches by refreshing only the chunks the paper's Sec. 5
// merge-dependency structure couples to the touched cells, instead of
// recomputing the scenario from scratch.
//
// The locality argument: every structural operator moves leaf data only
// between instance positions of the *same* leaf member at the *same*
// parameter moment and other coordinates (Relocate: Cout(d,t,e) =
// Cin(d_t,t,e); Split reassigns moments between an existing and a new
// instance of one member). So a cell write can only influence output chunks
// in its own chunk column (all dimensions except the varying one fixed),
// and along the varying dimension only within the transitive closure of
// chunk slabs linked by members whose instances share a slab — computed as
// connected components of a member <-> slab MergeGraph.

// One edit applied through a DeltaBatch, in storage encoding (⊥ is the
// sentinel; see common/value.h). `old_storage` is the cell's value at
// record time, so a batch replayed against a cache (PatchCellDelta)
// subtracts exactly what the cube held.
struct CellEdit {
  std::vector<int> coords;
  double old_storage = 0.0;
  double new_storage = 0.0;
};

// A plain cell write, the input of the Database edit-feed API.
struct CellWrite {
  std::vector<int> coords;
  CellValue value;
};

// Records a stream of cell writes against `base`, applying each write
// immediately. The batch keeps (a) the edit trail with before/after storage
// values, for patching aggregate caches, and (b) the touched chunk set, the
// seed of the refresh closure. Writes to the same cell chain consistently
// (the second edit's old value is the first edit's new value).
class DeltaBatch {
 public:
  // `base` must outlive the batch and must not be structurally modified
  // while the batch records.
  explicit DeltaBatch(Cube* base) : base_(base) {}

  Status Set(const std::vector<int>& coords, CellValue v);
  Status SetByName(const std::vector<std::string>& path_names, CellValue v);

  Cube* base() const { return base_; }
  const std::vector<CellEdit>& edits() const { return edits_; }
  // Touched chunk ids, ascending, deduplicated.
  std::vector<ChunkId> TouchedChunks() const;
  int64_t num_edits() const { return static_cast<int64_t>(edits_.size()); }

 private:
  Cube* base_;
  std::vector<CellEdit> edits_;
};

// The affected-chunk closure of a touched chunk set under one structural
// scenario: the input chunks a refresh must re-read and the output chunks
// it must patch. Computed by ComputeDeltaClosure below.
struct DeltaClosure {
  std::vector<ChunkId> input_chunks;   // Base-cube ids, ascending.
  std::vector<ChunkId> output_chunks;  // Output-layout ids, ascending.
  // Union of the varying-dim members across the touched components — every
  // member with an instance position in any closure slab. Scoping the
  // sub-recompute to this set loses no contributors (each such member is
  // linked to the slab's graph node, hence inside the component).
  std::vector<MemberId> members;       // Ascending.
};

// Precomputed member <-> slab coupling for a fixed (input, output) schema
// pair. Building the coupling MergeGraph costs O(instances in the varying
// dimension) — the dominant cost for wide dimensions — while closing a
// touched set against a built index costs only O(touched + closure).
// IncrementalScenario builds one index per retained output and reuses it
// across ApplyDelta batches.
class DeltaClosureIndex {
 public:
  static Result<DeltaClosureIndex> Build(const ChunkLayout& in_layout,
                                         const Dimension& in_dim,
                                         const ChunkLayout& out_layout,
                                         const Dimension& out_dim,
                                         int varying_dim);
  // `touched` holds base-cube chunk ids (any order, duplicates fine).
  DeltaClosure Close(const std::vector<ChunkId>& touched) const;

 private:
  DeltaClosureIndex() = default;

  ChunkLayout in_layout_;
  ChunkLayout out_layout_;
  int varying_dim_ = -1;
  // Input slab (varying chunk coordinate) -> component, -1 for slabs with
  // no instance positions (padding-only: nothing merges in or out).
  std::vector<int> comp_of_in_slab_;
  std::vector<std::vector<int>> comp_in_slabs_;
  std::vector<std::vector<int>> comp_out_slabs_;
  std::vector<std::vector<MemberId>> comp_members_;
};

// Transitive closure of `touched` (base-cube chunk ids) under the member
// coupling of `varying_dim`: a MergeGraph links every member of the varying
// dimension to the chunk slabs its instance positions occupy in the input
// schema (`in_layout` + `in_dim`) and in the output schema (`out_layout` +
// `out_dim` — larger when the scenario introduced instances), and the
// graph's connected components are the units of independent recomputation.
// Per touched chunk column (all dimensions except `varying_dim` fixed), the
// closure is the touched slab's component projected back onto that column.
// One-shot convenience over DeltaClosureIndex::Build + Close.
Result<DeltaClosure> ComputeDeltaClosure(const ChunkLayout& in_layout,
                                         const Dimension& in_dim,
                                         const ChunkLayout& out_layout,
                                         const Dimension& out_dim,
                                         int varying_dim,
                                         const std::vector<ChunkId>& touched);

// Knobs for one incremental refresh, mirroring the governor hooks the
// engine threads through batched evaluation.
struct RefreshOptions {
  int eval_threads = 1;
  EvalStrategy strategy = EvalStrategy::kDirect;
  // Polled at refresh phase boundaries and threaded into the sub-cube
  // recompute. A refresh that observes a stop request patches nothing (the
  // retained cube stays consistent) but leaves the scenario flagged
  // needs_rebuild when the delta was already applied to the base cube.
  CancellationToken cancel;
  // Memory-budget hooks (QueryContext::TryReserveCells /ReleaseCells). The
  // refresh reserves the sub-cube's cell footprint before recomputing and
  // releases it on every exit path. A failed reservation cancels the
  // refresh with kResourceExhausted (never a silent fallback to the full
  // recompute, which would be strictly larger).
  std::function<bool(int64_t)> try_reserve_cells;
  std::function<void(int64_t)> release_cells;
};

// Work counters for one refresh (also mirrored into the delta.refresh.*
// metrics).
struct RefreshStats {
  int64_t chunks_affected = 0;  // Input chunks re-read (closure size).
  int64_t chunks_patched = 0;   // Output chunks replaced or erased.
  bool full_recompute = false;  // The incremental path was not applicable.
};

// A stable fingerprint of a scenario stack, for the aggregate-cache key
// extension: two stacks with the same fingerprint describe the same
// transformation. FNV-1a over every spec field; empty stack => 0.
uint64_t ScenarioFingerprint(const std::vector<ScenarioSpec>& specs);

// A perspective cube kept alive across edits.
//
//   IncrementalScenario inc = *IncrementalScenario::Create(&cube, {spec});
//   ... serve queries from inc.cube() ...
//   DeltaBatch batch(&cube);
//   batch.Set(coords, CellValue(42.0));
//   inc.ApplyDelta(batch);               // refreshes only coupled chunks
//   ... inc.cube() is bit-identical to a from-scratch recompute ...
//
// The incremental path applies to single-spec stacks without INTRODUCE ops
// (introductions change the output schema's extents and seed cells across
// members, breaking chunk-column locality); anything else falls back to a
// full recompute through the same call — correctness always, speed for the
// relocate/split scenarios production edit feeds actually replay.
//
// Structural scenario edits go through UpdateSpec: replacing spec k of a
// composed stack re-lowers only stages k..end, reusing the retained
// intermediate cubes of the unchanged prefix (counted by
// scenario.compose.stages_reused).
class IncrementalScenario {
 public:
  // Computes the initial perspective cube. `base` must outlive the object.
  static Result<IncrementalScenario> Create(const Cube* base,
                                            std::vector<ScenarioSpec> specs,
                                            const ScenarioEvalOptions& opts = {});

  IncrementalScenario(IncrementalScenario&&) = default;
  IncrementalScenario& operator=(IncrementalScenario&&) = default;

  const PerspectiveCube& cube() const { return *pc_; }
  const std::vector<ScenarioSpec>& specs() const { return specs_; }
  uint64_t fingerprint() const { return fingerprint_; }
  // True after a cancelled / failed refresh whose delta already reached the
  // base cube: the retained output no longer reflects the base and must be
  // rebuilt before serving.
  bool needs_rebuild() const { return needs_rebuild_; }

  // Refreshes the retained cube after `batch`'s writes (already applied to
  // the base cube by the batch itself). The refreshed output is
  // bit-identical to recomputing the scenario from scratch on the edited
  // base, at every eval_threads setting.
  Status ApplyDelta(const DeltaBatch& batch, const RefreshOptions& opts = {},
                    RefreshStats* stats = nullptr);

  // Replaces spec `stage` and re-lowers stages stage..end from the retained
  // intermediate outputs. The attached cache (if any) is dropped to the
  // rebuilt state (structural edits re-shape views wholesale).
  Status UpdateSpec(size_t stage, ScenarioSpec spec,
                    const ScenarioEvalOptions& opts = {});

  // Full recompute (the needs_rebuild escape hatch).
  Status Rebuild(const ScenarioEvalOptions& opts = {});

  // Attaches an aggregate cache built over the *output* cube; every patched
  // output chunk is then propagated into the cache's resident views
  // (subtract old chunk, add new chunk — see AggregateCache). The cache
  // must outlive the scenario or be detached (nullptr).
  void AttachCache(AggregateCache* cache);

 private:
  IncrementalScenario() = default;

  // Recomputes stages `first_stage`..end from the retained prefix.
  Status RecomputeFrom(size_t first_stage, const ScenarioEvalOptions& opts);
  // The incremental chunk-patch path; sets *applied=false when the shape of
  // the scenario or the closure makes it inapplicable.
  Status TryIncrementalRefresh(const DeltaBatch& batch,
                               const RefreshOptions& opts, RefreshStats* stats,
                               bool* applied);

  const Cube* base_ = nullptr;
  std::vector<ScenarioSpec> specs_;
  uint64_t fingerprint_ = 0;
  // Member <-> slab coupling of (base schema, retained output schema),
  // built lazily on the first refresh and dropped whenever the output is
  // recomputed (its layout or instance map may have changed).
  std::optional<DeltaClosureIndex> closure_index_;
  // Output cube of every spec but the last (the last lives in pc_). Reused
  // by UpdateSpec's suffix re-lowering.
  std::vector<Cube> intermediates_;
  std::optional<PerspectiveCube> pc_;
  AggregateCache* cache_ = nullptr;
  bool needs_rebuild_ = false;
};

}  // namespace olap

#endif  // OLAP_WHATIF_DELTA_H_
