#include "whatif/delta.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "whatif/merge_graph.h"

namespace olap {

namespace {

struct DeltaMetrics {
  Counter* runs;
  Counter* incremental;
  Counter* full_fallbacks;
  Counter* chunks_affected;
  Counter* chunks_patched;
  Counter* stages_reused;
  static const DeltaMetrics& Get() {
    static DeltaMetrics m{
        MetricsRegistry::Global().counter("delta.refresh.runs"),
        MetricsRegistry::Global().counter("delta.refresh.incremental"),
        MetricsRegistry::Global().counter("delta.refresh.full_fallbacks"),
        MetricsRegistry::Global().counter("delta.refresh.chunks_affected"),
        MetricsRegistry::Global().counter("delta.refresh.chunks_patched"),
        MetricsRegistry::Global().counter("scenario.compose.stages_reused"),
    };
    return m;
  }
};

// Releases a governor cell reservation on every exit path.
class ScopedReservation {
 public:
  ScopedReservation(const RefreshOptions& opts, int64_t cells)
      : opts_(opts), cells_(cells) {}
  ~ScopedReservation() {
    if (held_ && opts_.release_cells) opts_.release_cells(cells_);
  }
  // False when the budget declined the reservation.
  bool Acquire() {
    if (!opts_.try_reserve_cells) return true;
    held_ = opts_.try_reserve_cells(cells_);
    return held_;
  }

 private:
  const RefreshOptions& opts_;
  int64_t cells_;
  bool held_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// DeltaBatch
// ---------------------------------------------------------------------------

Status DeltaBatch::Set(const std::vector<int>& coords, CellValue v) {
  if (static_cast<int>(coords.size()) != base_->num_dims()) {
    return Status::InvalidArgument("expected one coordinate per dimension");
  }
  const std::vector<int>& extents = base_->layout().extents();
  for (int d = 0; d < base_->num_dims(); ++d) {
    if (coords[d] < 0 || coords[d] >= extents[d]) {
      return Status::OutOfRange("coordinate outside the cube extents");
    }
  }
  CellEdit edit;
  edit.coords = coords;
  edit.old_storage = CellValue::ToStorage(base_->GetCell(coords));
  edit.new_storage = CellValue::ToStorage(v);
  base_->SetCell(coords, v);
  edits_.push_back(std::move(edit));
  return Status::Ok();
}

Status DeltaBatch::SetByName(const std::vector<std::string>& path_names,
                             CellValue v) {
  Result<std::vector<int>> coords = base_->ResolveCoords(path_names);
  if (!coords.ok()) return coords.status();
  return Set(*coords, v);
}

std::vector<ChunkId> DeltaBatch::TouchedChunks() const {
  std::vector<ChunkId> out;
  out.reserve(edits_.size());
  for (const CellEdit& e : edits_) {
    out.push_back(base_->layout().ChunkOf(e.coords));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Closure
// ---------------------------------------------------------------------------

namespace {

// MergeGraph node encoding: slabs of the input grid, slabs of the (possibly
// longer) output grid, and the members that link them. Slab indices are
// bounded by extent / chunk_size, far below 2^40.
constexpr ChunkId kOutSlabBase = ChunkId{1} << 40;
constexpr ChunkId kMemberBase = ChunkId{1} << 41;

}  // namespace

Result<DeltaClosureIndex> DeltaClosureIndex::Build(const ChunkLayout& in_layout,
                                                   const Dimension& in_dim,
                                                   const ChunkLayout& out_layout,
                                                   const Dimension& out_dim,
                                                   int varying_dim) {
  const int n = in_layout.num_dims();
  if (varying_dim < 0 || varying_dim >= n || out_layout.num_dims() != n) {
    return Status::InvalidArgument("closure: bad varying dimension");
  }
  // Chunk columns translate 1:1 between the layouts only when every
  // non-varying dimension has identical extent and tile size (the operators
  // guarantee this: OptionsOf carries the chunk sizes through, and only the
  // varying extent can grow).
  for (int d = 0; d < n; ++d) {
    if (d == varying_dim) continue;
    if (in_layout.extents()[d] != out_layout.extents()[d] ||
        in_layout.chunk_sizes()[d] != out_layout.chunk_sizes()[d]) {
      return Status::FailedPrecondition(
          "closure: layouts disagree on a non-varying dimension");
    }
  }
  const int in_cs = in_layout.chunk_sizes()[varying_dim];
  const int out_cs = out_layout.chunk_sizes()[varying_dim];
  const int in_slabs = in_layout.chunks_per_dim()[varying_dim];

  // Member <-> slab coupling graph. Every instance position a member holds
  // in either schema ties the member to that slab; connected components are
  // the independent units of recomputation (the transitive closure the
  // merge-dependency graph of Sec. 5.2 induces at slab granularity).
  MergeGraph g;
  for (const MemberInstance& inst : in_dim.instances()) {
    if (inst.id < 0 || inst.id >= in_layout.extents()[varying_dim]) continue;
    g.AddEdge(kMemberBase + inst.member, inst.id / in_cs);
  }
  for (const MemberInstance& inst : out_dim.instances()) {
    if (inst.id < 0 || inst.id >= out_layout.extents()[varying_dim]) continue;
    g.AddEdge(kMemberBase + inst.member, kOutSlabBase + inst.id / out_cs);
  }

  std::vector<std::vector<int>> components = g.ConnectedComponents();

  DeltaClosureIndex index;
  index.in_layout_ = in_layout;
  index.out_layout_ = out_layout;
  index.varying_dim_ = varying_dim;
  index.comp_of_in_slab_.assign(in_slabs, -1);
  const int num_comps = static_cast<int>(components.size());
  index.comp_in_slabs_.resize(num_comps);
  index.comp_out_slabs_.resize(num_comps);
  index.comp_members_.resize(num_comps);
  for (int c = 0; c < num_comps; ++c) {
    for (int node : components[c]) {
      const ChunkId key = g.chunk(node);
      if (key >= kMemberBase) {
        index.comp_members_[c].push_back(
            static_cast<MemberId>(key - kMemberBase));
      } else if (key >= kOutSlabBase) {
        index.comp_out_slabs_[c].push_back(
            static_cast<int>(key - kOutSlabBase));
      } else {
        const int vc = static_cast<int>(key);
        index.comp_in_slabs_[c].push_back(vc);
        if (vc >= 0 && vc < in_slabs) index.comp_of_in_slab_[vc] = c;
      }
    }
    std::sort(index.comp_members_[c].begin(), index.comp_members_[c].end());
  }
  return index;
}

DeltaClosure DeltaClosureIndex::Close(
    const std::vector<ChunkId>& touched) const {
  const int in_slabs = in_layout_.chunks_per_dim()[varying_dim_];
  const int out_slabs = out_layout_.chunks_per_dim()[varying_dim_];

  // Group the touched chunks by chunk column (coords minus the varying
  // dimension) and union the components their varying slabs belong to.
  std::map<std::vector<int>, std::set<int>> comps_by_column;
  std::map<std::vector<int>, std::set<int>> loose_slabs_by_column;
  for (ChunkId id : touched) {
    std::vector<int> coords = in_layout_.ChunkCoords(id);
    const int vc = coords[varying_dim_];
    coords[varying_dim_] = 0;  // Canonical column key.
    const int c = (vc >= 0 && vc < in_slabs) ? comp_of_in_slab_[vc] : -1;
    if (c >= 0) {
      comps_by_column[coords].insert(c);
    } else {
      // A slab with no instance positions (padding-only edit): nothing can
      // move in or out of it, but the touched chunk itself still holds the
      // new bytes — patch it 1:1.
      loose_slabs_by_column[coords].insert(vc);
    }
  }

  DeltaClosure closure;
  auto add_column = [&](const std::vector<int>& column, int in_vc,
                        int out_vc) {
    std::vector<int> coords = column;
    if (in_vc >= 0 && in_vc < in_slabs) {
      coords[varying_dim_] = in_vc;
      closure.input_chunks.push_back(in_layout_.ChunkIdAt(coords));
    }
    if (out_vc >= 0 && out_vc < out_slabs) {
      coords[varying_dim_] = out_vc;
      closure.output_chunks.push_back(out_layout_.ChunkIdAt(coords));
    }
  };
  // Members of the touched components only — the union over columns is the
  // scope the sub-recompute needs (membership is column-independent).
  std::set<int> touched_comps;
  for (const auto& [column, comps] : comps_by_column) {
    touched_comps.insert(comps.begin(), comps.end());
  }
  for (int c : touched_comps) {
    closure.members.insert(closure.members.end(), comp_members_[c].begin(),
                           comp_members_[c].end());
  }
  for (const auto& [column, comps] : comps_by_column) {
    for (int c : comps) {
      for (int vc : comp_in_slabs_[c]) add_column(column, vc, -1);
      for (int vc : comp_out_slabs_[c]) add_column(column, -1, vc);
    }
  }
  for (const auto& [column, slabs] : loose_slabs_by_column) {
    for (int vc : slabs) add_column(column, vc, vc);
  }
  auto finish = [](std::vector<ChunkId>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  finish(&closure.input_chunks);
  finish(&closure.output_chunks);
  std::sort(closure.members.begin(), closure.members.end());
  closure.members.erase(
      std::unique(closure.members.begin(), closure.members.end()),
      closure.members.end());
  return closure;
}

Result<DeltaClosure> ComputeDeltaClosure(const ChunkLayout& in_layout,
                                         const Dimension& in_dim,
                                         const ChunkLayout& out_layout,
                                         const Dimension& out_dim,
                                         int varying_dim,
                                         const std::vector<ChunkId>& touched) {
  Result<DeltaClosureIndex> index = DeltaClosureIndex::Build(
      in_layout, in_dim, out_layout, out_dim, varying_dim);
  if (!index.ok()) return index.status();
  return index->Close(touched);
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

namespace {

struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void Bytes(const void* p, size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    I64(static_cast<int64_t>(s.size()));
    Bytes(s.data(), s.size());
  }
};

}  // namespace

uint64_t ScenarioFingerprint(const std::vector<ScenarioSpec>& specs) {
  if (specs.empty()) return 0;
  Fnv f;
  f.I64(static_cast<int64_t>(specs.size()));
  for (const ScenarioSpec& spec : specs) {
    f.I64(spec.varying_dim);
    f.I64(static_cast<int64_t>(spec.mode));
    for (MemberId m : spec.scope_members) f.I64(m);
    f.I64(spec.pebbling_read_order ? 1 : 0);
    f.I64(static_cast<int64_t>(spec.ops.size()));
    for (const ScenarioOp& op : spec.ops) {
      f.I64(static_cast<int64_t>(op.kind));
      switch (op.kind) {
        case ScenarioOp::Kind::kIntroduce:
          for (const NewMemberSpec& s : op.introductions) {
            f.Str(s.name);
            f.Str(s.parent);
            f.I64(s.inner ? 1 : 0);
            f.I64(s.from_moment);
            f.I64(static_cast<int64_t>(s.seed));
            f.Str(s.source);
            f.F64(s.factor);
          }
          break;
        case ScenarioOp::Kind::kSplit:
          for (const ChangeTuple& c : op.changes) {
            f.I64(c.member);
            f.I64(c.old_parent);
            f.I64(c.new_parent);
            f.I64(c.moment);
          }
          break;
        case ScenarioOp::Kind::kPerspective:
          for (int m : op.perspectives.moments()) f.I64(m);
          f.I64(static_cast<int64_t>(op.semantics));
          break;
      }
    }
  }
  return f.h;
}

// ---------------------------------------------------------------------------
// IncrementalScenario
// ---------------------------------------------------------------------------

Result<IncrementalScenario> IncrementalScenario::Create(
    const Cube* base, std::vector<ScenarioSpec> specs,
    const ScenarioEvalOptions& opts) {
  if (base == nullptr) return Status::InvalidArgument("null base cube");
  IncrementalScenario inc;
  inc.base_ = base;
  inc.specs_ = std::move(specs);
  inc.fingerprint_ = ScenarioFingerprint(inc.specs_);
  OLAP_RETURN_IF_ERROR(inc.RecomputeFrom(0, opts));
  return inc;
}

Status IncrementalScenario::RecomputeFrom(size_t first_stage,
                                          const ScenarioEvalOptions& opts) {
  // Any recompute may reshape the output layout or instance map.
  closure_index_.reset();
  const size_t n = specs_.size();
  if (n <= 1) {
    // Single-spec (or identity) stacks go through the algebra whole — the
    // exact path the executor takes, bit-identical by construction.
    Result<PerspectiveCube> pc = ComposeScenarios(*base_, specs_, opts);
    if (!pc.ok()) return pc.status();
    intermediates_.clear();
    pc_.emplace(*std::move(pc));
    return Status::Ok();
  }
  // Multi-spec composition, stage by stage with intermediates retained so a
  // later UpdateSpec can re-lower only the dirtied suffix. Each stage's
  // output cube is what ComposeScenarios' internal loop would have carried
  // forward (evaluation mode does not shape the output cube, only how
  // derived cells are later served).
  if (first_stage > n - 1) first_stage = n - 1;
  intermediates_.resize(n - 1);
  Cube current = first_stage == 0 ? *base_ : intermediates_[first_stage - 1];
  for (size_t i = first_stage; i < n; ++i) {
    Result<PerspectiveCube> stage = ComputeScenario(current, specs_[i], opts);
    if (!stage.ok()) return stage.status();
    current = stage->output();
    if (i + 1 < n) intermediates_[i] = current;
  }
  EvalMode combined = EvalMode::kNonVisual;
  for (const ScenarioSpec& spec : specs_) {
    if (spec.mode == EvalMode::kVisual) combined = EvalMode::kVisual;
  }
  pc_.emplace(base_, std::move(current), combined, /*varying_dim=*/-1);
  return Status::Ok();
}

Status IncrementalScenario::TryIncrementalRefresh(const DeltaBatch& batch,
                                                  const RefreshOptions& opts,
                                                  RefreshStats* stats,
                                                  bool* applied) {
  *applied = false;
  if (specs_.size() != 1) return Status::Ok();
  const ScenarioSpec& spec = specs_[0];
  if (spec.varying_dim < 0) return Status::Ok();
  for (const ScenarioOp& op : spec.ops) {
    // Introduction seeds cells across members (clone/transfer sources) and
    // grows the schema per edit feed — outside chunk-column locality.
    if (op.kind == ScenarioOp::Kind::kIntroduce) return Status::Ok();
  }
  const Dimension& in_dim = base_->schema().dimension(spec.varying_dim);
  if (!in_dim.is_varying()) return Status::Ok();
  const Cube& out = pc_->output();
  const Dimension& out_dim = out.schema().dimension(spec.varying_dim);

  std::vector<ChunkId> touched = batch.TouchedChunks();
  if (touched.empty()) {
    *applied = true;
    return Status::Ok();
  }
  if (!closure_index_.has_value()) {
    Result<DeltaClosureIndex> index = DeltaClosureIndex::Build(
        base_->layout(), in_dim, out.layout(), out_dim, spec.varying_dim);
    if (!index.ok()) return Status::Ok();  // Shape mismatch: full fallback.
    closure_index_ = std::move(*index);
  }
  DeltaClosure closure_value = closure_index_->Close(touched);
  const DeltaClosure* closure = &closure_value;
  stats->chunks_affected = static_cast<int64_t>(closure->input_chunks.size());

  const int64_t footprint =
      static_cast<int64_t>(closure->input_chunks.size()) *
          base_->layout().cells_per_chunk() +
      static_cast<int64_t>(closure->output_chunks.size()) *
          out.layout().cells_per_chunk();
  ScopedReservation reservation(opts, footprint);
  if (!reservation.Acquire()) {
    return Status::ResourceExhausted("delta refresh over memory budget");
  }
  OLAP_RETURN_IF_ERROR(opts.cancel.Poll("delta.refresh"));

  // Re-run the same scenario over just the closure's input chunks. The
  // locality argument (file header) makes each affected output chunk's
  // recomputed bytes identical to a full recompute's.
  CubeOptions sub_options;
  sub_options.chunk_sizes = base_->layout().chunk_sizes();
  Cube sub(base_->schema(), sub_options);
  for (ChunkId id : closure->input_chunks) {
    if (const Chunk* c = base_->FindChunk(id)) {
      sub.AdoptChunk(id, Chunk(*c));
    }
  }
  ScenarioEvalOptions sub_opts;
  sub_opts.strategy = opts.strategy;
  // A closure of a few chunks does not amortize worker spin-up; clamp the
  // fan-out to the work available. Evaluation is thread-count-deterministic
  // (the refresh is bit-identical at every eval_threads setting), so the
  // clamp affects latency only.
  sub_opts.eval_threads = std::max(
      1, std::min<int>(opts.eval_threads,
                       static_cast<int>(closure->input_chunks.size()) / 8));
  sub_opts.cancel = opts.cancel;
  // Scope the sub-recompute to the closure's component members: the merge
  // machinery's fixed cost scales with the member count, and members outside
  // the touched components cannot contribute to any closure chunk. Scoping
  // implies non-visual mode, which only affects serving — never the output
  // cube's leaf bytes, which are all the patch phase reads.
  ScenarioSpec sub_spec = spec;
  if (spec.scope_members.empty()) {
    sub_spec.scope_members = closure->members;
    sub_spec.mode = EvalMode::kNonVisual;
    sub_spec.pebbling_read_order = false;
  }
  Result<PerspectiveCube> sub_pc = ComputeScenario(sub, sub_spec, sub_opts);
  if (!sub_pc.ok()) return sub_pc.status();
  if (sub_pc->output().layout().extents() != out.layout().extents()) {
    return Status::Ok();  // Unexpected schema drift: full fallback.
  }
  OLAP_RETURN_IF_ERROR(opts.cancel.Poll("delta.refresh"));

  // Patch phase: replace / erase the affected output chunks, propagating
  // each swap into the attached aggregate cache. Not cancellable — once the
  // first chunk lands the rest must follow for the cube to stay consistent
  // (the phase is pure in-memory moves, microseconds per chunk).
  Cube* retained = pc_->mutable_output();
  for (ChunkId id : closure->output_chunks) {
    const Chunk* fresh = sub_pc->output().FindChunk(id);
    const Chunk* old = retained->FindChunk(id);
    if (fresh == nullptr && old == nullptr) continue;
    if (cache_ != nullptr) {
      cache_->PatchChunkDelta(retained->layout(), id, old, fresh);
    }
    if (fresh != nullptr) {
      retained->ReplaceChunk(id, Chunk(*fresh));
    } else {
      retained->EraseChunk(id);
    }
    ++stats->chunks_patched;
  }
  *applied = true;
  return Status::Ok();
}

Status IncrementalScenario::ApplyDelta(const DeltaBatch& batch,
                                       const RefreshOptions& opts,
                                       RefreshStats* stats) {
  TraceSpan span("delta.refresh");
  RefreshStats local;
  if (stats == nullptr) stats = &local;
  *stats = RefreshStats{};
  const DeltaMetrics& dm = DeltaMetrics::Get();
  dm.runs->Increment();
  auto fail = [&](Status s) {
    // The batch already reached the base cube; a refresh that did not run
    // to completion leaves the retained output stale.
    needs_rebuild_ = true;
    span.SetError(s);
    return s;
  };
  if (batch.base() != base_) {
    span.SetError(Status::InvalidArgument(""));
    return Status::InvalidArgument("batch was recorded against another cube");
  }
  if (needs_rebuild_) return fail(Status::FailedPrecondition(
      "scenario needs Rebuild() after an interrupted refresh"));

  bool applied = false;
  Status s = TryIncrementalRefresh(batch, opts, stats, &applied);
  if (!s.ok()) return fail(s);
  if (applied) {
    dm.incremental->Increment();
    dm.chunks_affected->Increment(stats->chunks_affected);
    dm.chunks_patched->Increment(stats->chunks_patched);
    span.SetDetail("chunks_patched=" + std::to_string(stats->chunks_patched));
    return Status::Ok();
  }

  // Full-recompute fallback: same API, correctness for every scenario
  // shape, budget-accounted like the incremental path.
  stats->full_recompute = true;
  dm.full_fallbacks->Increment();
  span.SetDetail("full_recompute");
  ScopedReservation reservation(
      opts, base_->NumStoredChunks() * base_->layout().cells_per_chunk());
  if (!reservation.Acquire()) {
    return fail(Status::ResourceExhausted("delta rebuild over memory budget"));
  }
  ScenarioEvalOptions so;
  so.strategy = opts.strategy;
  so.eval_threads = opts.eval_threads;
  so.cancel = opts.cancel;
  if (Status r = RecomputeFrom(0, so); !r.ok()) return fail(r);
  if (cache_ != nullptr) cache_->DropResidentViews();
  needs_rebuild_ = false;
  return Status::Ok();
}

Status IncrementalScenario::UpdateSpec(size_t stage, ScenarioSpec spec,
                                       const ScenarioEvalOptions& opts) {
  if (stage >= specs_.size()) {
    return Status::InvalidArgument("spec stage out of range");
  }
  specs_[stage] = std::move(spec);
  fingerprint_ = ScenarioFingerprint(specs_);
  DeltaMetrics::Get().stages_reused->Increment(static_cast<int64_t>(stage));
  Status s = RecomputeFrom(stage, opts);
  needs_rebuild_ = !s.ok();
  if (s.ok() && cache_ != nullptr) cache_->DropResidentViews();
  return s;
}

Status IncrementalScenario::Rebuild(const ScenarioEvalOptions& opts) {
  Status s = RecomputeFrom(0, opts);
  needs_rebuild_ = !s.ok();
  if (s.ok() && cache_ != nullptr) cache_->DropResidentViews();
  return s;
}

void IncrementalScenario::AttachCache(AggregateCache* cache) {
  cache_ = cache;
}

}  // namespace olap
