#ifndef OLAP_WHATIF_SCENARIO_ALGEBRA_H_
#define OLAP_WHATIF_SCENARIO_ALGEBRA_H_

#include <cstdint>
#include <vector>

#include "agg/batch_eval.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "cube/cube.h"
#include "rules/rule.h"
#include "whatif/perspective_cube.h"

namespace olap {

// ---------------------------------------------------------------------------
// Scenario algebra: composition and comparison of what-if scenarios
// ---------------------------------------------------------------------------
//
// WhatIfSpec describes ONE canonical scenario (introductions, then changes,
// then perspectives — the order the paper's extended MDX implies). The
// scenario algebra generalises that to *pipelines*: an ordered stack of
// positive (introduce, split) and negative (perspective) operations over
// one varying dimension, composed with scenarios over other dimensions,
// with a single evaluation-mode resolution rule (visual wins). It also
// closes the algebra under *comparison*: containment / overlap / distance
// between two scenarios' result cubes, evaluated cell-by-cell over a common
// ref set so shared cover views are computed once.

// One step of a scenario pipeline. Exactly one payload is meaningful,
// selected by `kind`.
struct ScenarioOp {
  enum class Kind { kIntroduce, kSplit, kPerspective };
  Kind kind = Kind::kSplit;

  std::vector<NewMemberSpec> introductions;   // kIntroduce
  ChangeRelation changes;                     // kSplit
  Perspectives perspectives;                  // kPerspective
  Semantics semantics = Semantics::kStatic;   // kPerspective

  static ScenarioOp Introduce(std::vector<NewMemberSpec> specs) {
    ScenarioOp op;
    op.kind = Kind::kIntroduce;
    op.introductions = std::move(specs);
    return op;
  }
  static ScenarioOp SplitOp(ChangeRelation changes) {
    ScenarioOp op;
    op.kind = Kind::kSplit;
    op.changes = std::move(changes);
    return op;
  }
  static ScenarioOp Perspective(Perspectives perspectives,
                                Semantics semantics) {
    ScenarioOp op;
    op.kind = Kind::kPerspective;
    op.perspectives = std::move(perspectives);
    op.semantics = semantics;
    return op;
  }
};

// A full scenario over one varying dimension: an ordered op stack plus the
// evaluation mode and the execution knobs WhatIfSpec carries.
struct ScenarioSpec {
  int varying_dim = -1;
  EvalMode mode = EvalMode::kNonVisual;
  std::vector<ScenarioOp> ops;
  // Sec. 6.3 merge scoping (non-visual only); applies to the canonical
  // single-pass pipeline, ignored by general op stacks.
  std::vector<MemberId> scope_members;
  bool pebbling_read_order = false;

  // Lossless embedding of the classic spec: [introduce?, split?,
  // perspective?] in canonical order.
  static ScenarioSpec FromWhatIf(const WhatIfSpec& spec);

  // True when `ops` matches the canonical order with each kind at most
  // once — the shape ComputePerspectiveCube evaluates in one pass.
  bool canonical() const;
  // The WhatIfSpec equivalent; valid only when canonical().
  WhatIfSpec CanonicalWhatIf() const;
};

// Execution knobs shared by composition and comparison, mirroring the
// ComputePerspectiveCube parameter list.
struct ScenarioEvalOptions {
  EvalStrategy strategy = EvalStrategy::kDirect;
  SimulatedDisk* disk = nullptr;
  EvalStats* stats = nullptr;  // Reset, then accumulated across stages.
  int eval_threads = 1;
  const ChunkPipelineOptions* pipeline = nullptr;
  CancellationToken cancel;
};

// Evaluates one scenario. A canonical spec takes the single-pass
// ComputePerspectiveCube path (bit-identical to the classic WhatIfSpec
// route, including scoping); a general op stack is applied stage by stage,
// each stage transforming the previous stage's output cube.
Result<PerspectiveCube> ComputeScenario(const Cube& in,
                                        const ScenarioSpec& spec,
                                        const ScenarioEvalOptions& opts = {});

// Composes several scenarios (typically one per varying dimension) into a
// single perspective cube: specs apply in order, each over the previous
// output; derived cells follow the combined mode (visual wins). An empty
// spec list yields the identity scenario (the base cube, non-visual).
// Increments the scenario.compose.* counters.
Result<PerspectiveCube> ComposeScenarios(const Cube& in,
                                         const std::vector<ScenarioSpec>& specs,
                                         const ScenarioEvalOptions& opts = {});

// ---------------------------------------------------------------------------
// Scenario comparison
// ---------------------------------------------------------------------------

// Containment / overlap / distance between two scenarios' result cubes,
// measured over an explicit ref set (a query grid). A cell is *active* in a
// scenario when it evaluates non-⊥; distances treat ⊥ as 0.
//
// Laws (asserted by the metamorphic suite):
//   * distance symmetry:      l1/l2/linf(A,B) == l1/l2/linf(B,A);
//   * containment reflexivity: Compare(A,A) has both containments and
//     zero distance;
//   * containment antisymmetry: both containments => identical active
//     sets (overlap == active_a == active_b);
//   * overlap bound:          overlap <= min(active_a, active_b).
struct ScenarioComparison {
  int64_t cells_compared = 0;
  int64_t active_a = 0;
  int64_t active_b = 0;
  int64_t overlap = 0;       // Cells active in both.
  bool a_contains_b = true;  // Every B-active cell is A-active.
  bool b_contains_a = true;
  double l1 = 0.0;
  double l2 = 0.0;
  double linf = 0.0;
  // overlap / |active union|; 1.0 when both scenarios are empty.
  double jaccard = 1.0;
  // Per-ref values, aligned with the input ref order (for rendering a
  // delta grid).
  std::vector<CellValue> values_a;
  std::vector<CellValue> values_b;
};

struct ScenarioCompareOptions {
  ScenarioEvalOptions eval;
  // Serve derived cells of non-visual scenarios through one shared batched
  // evaluator prepared over the common ref set (cover views computed once
  // for both sides). scenario.compare.shared_views counts the views shared.
  bool batched_eval = true;
  BatchEvalOptions batch;  // Governor hooks etc.; cancel comes from `eval`.
};

// Evaluates both scenario stacks over `in`, then compares them cell-by-cell
// across `refs`. Increments the scenario.compare.* counters. Cancellation
// (opts.eval.cancel) is polled between stages and per compared cell.
Result<ScenarioComparison> CompareScenarios(
    const Cube& in, const std::vector<ScenarioSpec>& a,
    const std::vector<ScenarioSpec>& b, const std::vector<CellRef>& refs,
    const RuleSet* rules, const ScenarioCompareOptions& opts = {});

}  // namespace olap

#endif  // OLAP_WHATIF_SCENARIO_ALGEBRA_H_
