#include "whatif/perspective_cube.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>

#include "common/metrics.h"
#include "common/trace.h"
#include "rules/evaluator.h"
#include "whatif/pebbling.h"

namespace olap {

namespace {

CubeOptions OptionsOf(const Cube& in) {
  CubeOptions opts;
  opts.chunk_sizes = in.layout().chunk_sizes();
  return opts;
}

// Members whose instances a spec touches: the explicit scope, else every
// member with at least one instance.
std::vector<MemberId> EffectiveScope(const Dimension& dim,
                                     const WhatIfSpec& spec) {
  if (!spec.scope_members.empty()) return spec.scope_members;
  std::vector<MemberId> all;
  std::vector<bool> seen(dim.num_members(), false);
  for (const MemberInstance& inst : dim.instances()) {
    if (!seen[inst.member]) {
      seen[inst.member] = true;
      all.push_back(inst.member);
    }
  }
  return all;
}

// Charges one scan over the chunks relevant to the computation.
Gauge* PeakMergeChunksGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("whatif.peak_merge_chunks");
  return g;
}

// Charges one read pass over `schedule`. The synchronous loop is the
// oracle; with `pipeline` set the same schedule is charged through the
// out-of-core pipeline's windowed run coalescing (identical chunk set,
// fewer seeks). `peak_pebbles` > 0 resolves a defaulted pin budget.
void ChargeReadPass(const std::vector<ChunkId>& schedule, SimulatedDisk* disk,
                    const ChunkPipelineOptions* pipeline, int peak_pebbles) {
  if (disk == nullptr) return;
  if (pipeline == nullptr) {
    for (ChunkId id : schedule) disk->ReadChunk(id);
    return;
  }
  ChunkPipelineOptions opts = *pipeline;
  if (opts.pin_budget <= 0) {
    opts.pin_budget =
        std::max<int64_t>(std::max(1, peak_pebbles), opts.lookahead);
  }
  ChunkPipeline::ChargeSchedule(disk, schedule, opts);
}

void ChargeScan(const Cube& cube, int varying_dim,
                const std::vector<MemberId>& scope, SimulatedDisk* disk,
                EvalStats* stats, const ChunkPipelineOptions* pipeline) {
  TraceSpan span("whatif.scan");
  std::vector<ChunkId> chunks = RelevantChunks(cube, varying_dim, scope);
  span.SetDetail("chunks=" + std::to_string(chunks.size()));
  ++stats->passes;
  stats->chunk_reads += static_cast<int64_t>(chunks.size());
  ChargeReadPass(chunks, disk, pipeline, /*peak_pebbles=*/0);
}

// Charges one relocation pass: only the chunks holding (a) instances that
// survive into the output (non-empty vs_out) and (b) the source instances
// their values are copied from need to be touched — this is why the
// paper's static query time grows with the number of perspectives (more
// surviving instances to retrieve and merge, Sec. 6.1).
void ChargeRelocationScan(const Cube& cube, int varying_dim,
                          const std::vector<DynamicBitset>& vs_out,
                          const std::vector<MemberId>& scope,
                          bool pebbling_read_order, SimulatedDisk* disk,
                          EvalStats* stats,
                          const ChunkPipelineOptions* pipeline) {
  TraceSpan span("whatif.merge_scan");
  const Dimension& dim = cube.schema().dimension(varying_dim);
  std::unordered_set<MemberId> in_scope(scope.begin(), scope.end());
  std::vector<bool> needed(dim.num_positions(), false);
  std::vector<bool> member_seen(dim.num_members(), false);
  std::vector<MemberId> merge_members;
  for (const MemberInstance& inst : dim.instances()) {
    if (!in_scope.empty() && in_scope.count(inst.member) == 0) continue;
    const DynamicBitset& vs = vs_out[inst.id];
    if (vs.None()) continue;
    needed[inst.id] = true;
    for (int t = vs.FindFirst(); t >= 0; t = vs.FindNext(t + 1)) {
      InstanceId src = dim.InstanceValidAt(inst.member, t);
      if (src != kInvalidInstance) needed[src] = true;
    }
    if (!member_seen[inst.member]) {
      member_seen[inst.member] = true;
      merge_members.push_back(inst.member);
    }
  }
  const ChunkLayout& layout = cube.layout();
  const int width = layout.chunk_sizes()[varying_dim];
  std::vector<ChunkId> relevant;
  cube.ForEachChunk([&](ChunkId id, const Chunk&) {
    int base = layout.ChunkBase(id)[varying_dim];
    for (int pos = base; pos < base + width && pos < dim.num_positions(); ++pos) {
      if (needed[pos]) {
        relevant.push_back(id);
        return;
      }
    }
  });

  // How many chunks must be co-resident to merge related instances, under
  // the chosen read order (the Sec. 5.2 pebble count). With the heuristic,
  // the merge-graph chunks are read in the pebbling order (front of the
  // schedule); otherwise everything goes in ascending id order.
  TraceSpan pebble_span("whatif.plan.pebble");
  MergeGraph graph = BuildMergeGraph(cube, varying_dim, merge_members);
  std::vector<ChunkId> schedule;
  if (pebbling_read_order && graph.num_nodes() > 0) {
    PebbleResult pebbled = HeuristicPebble(graph);
    pebble_span.SetDetail("heuristic peak=" + std::to_string(pebbled.peak_pebbles));
    stats->peak_merge_chunks =
        std::max(stats->peak_merge_chunks, pebbled.peak_pebbles);
    PeakMergeChunksGauge()->Set(pebbled.peak_pebbles);
    // Merge-graph chunks (those actually stored) first, in pebbling order;
    // the remaining relevant chunks keep ascending order.
    std::unordered_set<ChunkId> stored(relevant.begin(), relevant.end());
    std::unordered_set<ChunkId> graph_chunks;
    schedule.reserve(relevant.size());
    for (int node : pebbled.order) {
      ChunkId id = graph.chunk(node);
      graph_chunks.insert(id);
      if (stored.count(id) > 0) schedule.push_back(id);
    }
    for (ChunkId id : relevant) {
      if (graph_chunks.count(id) == 0) schedule.push_back(id);
    }
  } else {
    schedule = relevant;  // ForEachChunk iterates ascending.
    if (graph.num_nodes() > 0) {
      std::vector<int> ascending(graph.num_nodes());
      std::iota(ascending.begin(), ascending.end(), 0);
      std::sort(ascending.begin(), ascending.end(), [&](int a, int b) {
        return graph.chunk(a) < graph.chunk(b);
      });
      const int peak = PeakPebblesForOrder(graph, ascending);
      pebble_span.SetDetail("ascending peak=" + std::to_string(peak));
      stats->peak_merge_chunks = std::max(stats->peak_merge_chunks, peak);
      PeakMergeChunksGauge()->Set(peak);
    }
  }
  ++stats->passes;
  stats->chunk_reads += static_cast<int64_t>(schedule.size());
  ChargeReadPass(schedule, disk, pipeline, stats->peak_merge_chunks);
}

// For MultipleMdx post-processing: the index of the single-perspective run
// whose output governs moment t under the full semantics.
int GoverningRun(const Perspectives& p, Semantics sem, int t) {
  const std::vector<int>& m = p.moments();
  switch (sem) {
    case Semantics::kStatic:
      return -1;  // Static merges by union; no per-moment governor.
    case Semantics::kForward:
    case Semantics::kExtendedForward: {
      int run = 0;
      for (int i = 0; i < p.size(); ++i) {
        if (m[i] <= t) run = i;
      }
      return run;  // Moments before Pmin ride with run 0.
    }
    case Semantics::kBackward:
    case Semantics::kExtendedBackward: {
      int run = p.size() - 1;
      for (int i = p.size() - 1; i >= 0; --i) {
        if (m[i] >= t) run = i;
      }
      return run;  // Moments after Pmax ride with the last run.
    }
  }
  return 0;
}

}  // namespace

CellValue PerspectiveCube::Evaluate(const CellRef& ref, const RuleSet* rules,
                                    const BatchCellEvaluator* batch) const {
  // A prepared batch evaluator only applies to the branch evaluating the
  // cube it was built over.
  auto batch_for = [batch](const Cube& cube) -> const BatchCellEvaluator* {
    return (batch != nullptr && &batch->data() == &cube) ? batch : nullptr;
  };
  std::vector<int> leaf_coords;
  if (output_.IsLeafRef(ref, &leaf_coords)) {
    if (varying_dim_ >= 0 && !scoped_members_.empty()) {
      MemberId m =
          output_.schema().dimension(varying_dim_).PositionMember(leaf_coords[varying_dim_]);
      if (!InScope(m)) return input_->GetCell(leaf_coords);
    }
    return output_.GetCell(leaf_coords);
  }
  if (mode_ == EvalMode::kVisual) {
    return CellEvaluator(output_, rules, nullptr, batch_for(output_))
        .Evaluate(ref);
  }
  // Non-visual: derived values are retained from the input cube. Refs that
  // pin instances created by a Split, or that name members introduced into
  // the output schema, do not exist in the input; evaluate those on the
  // output instead.
  if (varying_dim_ >= 0) {
    const Dimension& d_in = input_->schema().dimension(varying_dim_);
    const AxisRef& r = ref[varying_dim_];
    if ((r.instance != kInvalidInstance &&
         r.instance >= d_in.num_instances()) ||
        r.member >= d_in.num_members()) {
      return CellEvaluator(output_, rules).Evaluate(ref);
    }
  }
  return CellEvaluator(*input_, rules, nullptr, batch_for(*input_))
      .Evaluate(ref);
}

namespace {

// Mirrors one computation's EvalStats into the process-wide registry when
// the computation finishes (any return path, including errors).
struct EvalStatsFlush {
  const EvalStats* stats;
  ~EvalStatsFlush() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter* passes = reg.counter("whatif.passes");
    static Counter* chunk_reads = reg.counter("whatif.chunk_reads");
    static Counter* cells_moved = reg.counter("whatif.cells_moved");
    static Counter* cells_seeded = reg.counter("whatif.cells_seeded");
    passes->Increment(stats->passes);
    chunk_reads->Increment(stats->chunk_reads);
    cells_moved->Increment(stats->cells_moved);
    cells_seeded->Increment(stats->cells_seeded);
  }
};

}  // namespace

Result<PerspectiveCube> ComputePerspectiveCube(const Cube& in,
                                               const WhatIfSpec& spec,
                                               EvalStrategy strategy,
                                               SimulatedDisk* disk,
                                               EvalStats* stats,
                                               int eval_threads,
                                               const ChunkPipelineOptions* pipeline,
                                               const CancellationToken& cancel) {
  TraceSpan span("whatif.compute_perspective_cube");
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = EvalStats{};
  EvalStatsFlush flush{stats};
  double io_before = disk != nullptr ? disk->stats().virtual_seconds : 0.0;

  auto fail = [&span](Status status) {
    span.SetError(status);
    return status;
  };
  // Pass-boundary poll: runs again after the Split and between Relocate
  // passes so a stop request never leaves this function mid-transformation.
  auto interrupted = [&cancel]() -> Status {
    return cancel.Poll("what-if compute");
  };
  if (Status s = interrupted(); !s.ok()) return fail(s);
  if (spec.varying_dim < 0 || spec.varying_dim >= in.num_dims()) {
    return fail(Status::InvalidArgument("what-if spec names no varying dimension"));
  }
  if (!in.schema().is_varying(spec.varying_dim)) {
    return fail(Status::FailedPrecondition(
        "dimension '" + in.schema().dimension(spec.varying_dim).name() +
        "' is not varying"));
  }

  // Positive scenarios first: hypothetical new members are introduced,
  // then hypothetical changes are imposed (which may reference the new
  // members), then any perspectives are applied to the changed cube.
  const Cube* base = &in;
  std::optional<Cube> intro_cube;
  if (!spec.introductions.empty()) {
    ChargeScan(in, spec.varying_dim, {}, disk, stats, pipeline);
    Result<Cube> intro =
        IntroduceMembers(in, spec.varying_dim, spec.introductions,
                         eval_threads, cancel, &stats->cells_seeded);
    if (!intro.ok()) return fail(intro.status());
    if (Status s = interrupted(); !s.ok()) return fail(s);
    stats->cells_moved += intro->CountNonNullCells();
    intro_cube = *std::move(intro);
    base = &*intro_cube;
  }
  std::optional<Cube> split_cube;
  if (!spec.changes.empty()) {
    std::vector<MemberId> changed;
    for (const ChangeTuple& tuple : spec.changes) changed.push_back(tuple.member);
    ChargeScan(*base, spec.varying_dim, changed, disk, stats, pipeline);
    Result<Cube> split =
        Split(*base, spec.varying_dim, spec.changes, eval_threads, cancel);
    if (!split.ok()) return fail(split.status());
    if (Status s = interrupted(); !s.ok()) return fail(s);
    stats->cells_moved += split->CountNonNullCells();
    split_cube = *std::move(split);
    base = &*split_cube;
  }

  if (spec.perspectives.empty()) {
    // Positive-only query (or the identity when there are no changes
    // either): Split's non-leaf evaluation defaults to non-visual unless
    // the query says otherwise.
    Cube out = split_cube.has_value()
                   ? *std::move(split_cube)
                   : intro_cube.has_value() ? *std::move(intro_cube) : in;
    if (disk != nullptr) {
      stats->virtual_io_seconds = disk->stats().virtual_seconds - io_before;
    }
    return PerspectiveCube(&in, std::move(out), spec.mode, spec.varying_dim);
  }

  const Dimension& dim = base->schema().dimension(spec.varying_dim);
  const int universe = dim.parameter_leaf_count();
  for (int p : spec.perspectives.moments()) {
    if (p < 0 || p >= universe) {
      return fail(Status::OutOfRange("perspective moment out of range"));
    }
  }
  // Scoped (partial) outputs are only sound when derived cells are not
  // recomputed from the output cube.
  const bool scoped =
      !spec.scope_members.empty() && spec.mode == EvalMode::kNonVisual;
  const std::vector<MemberId> scan_scope = EffectiveScope(dim, spec);
  const std::vector<MemberId> relocate_scope =
      scoped ? spec.scope_members : std::vector<MemberId>{};

  if (strategy == EvalStrategy::kDirect) {
    // One pass: transform every validity set, then move the data.
    std::vector<DynamicBitset> vs_out =
        TransformValiditySets(dim, spec.perspectives, spec.semantics);
    ChargeRelocationScan(*base, spec.varying_dim, vs_out, scan_scope,
                         spec.pebbling_read_order, disk, stats, pipeline);
    Cube out = Relocate(*base, spec.varying_dim, vs_out, relocate_scope,
                        /*copy_out_of_scope=*/!scoped, &stats->cells_moved,
                        eval_threads, cancel);
    if (Status s = interrupted(); !s.ok()) return fail(s);
    if (disk != nullptr) {
      stats->virtual_io_seconds = disk->stats().virtual_seconds - io_before;
    }
    return PerspectiveCube(&in, std::move(out), spec.mode, spec.varying_dim,
                           scoped ? spec.scope_members : std::vector<MemberId>{});
  }

  // MultipleMdx simulation: k single-perspective queries, then post-process
  // the k result sets into one (the paper's upper-bound baseline).
  const int param_dim = base->schema().parameter_of(spec.varying_dim);
  std::vector<Cube> runs;
  std::vector<std::vector<DynamicBitset>> run_vs;
  runs.reserve(spec.perspectives.size());
  for (int p : spec.perspectives.moments()) {
    if (Status s = interrupted(); !s.ok()) return fail(s);
    Perspectives single({p});
    std::vector<DynamicBitset> vs =
        TransformValiditySets(dim, single, spec.semantics);
    ChargeRelocationScan(*base, spec.varying_dim, vs, scan_scope,
                         spec.pebbling_read_order, disk, stats, pipeline);
    runs.push_back(Relocate(*base, spec.varying_dim, vs, relocate_scope,
                            /*copy_out_of_scope=*/!scoped, &stats->cells_moved,
                            eval_threads, cancel));
    run_vs.push_back(std::move(vs));
  }
  if (Status s = interrupted(); !s.ok()) return fail(s);

  // Post-processing pass: merge metadata and cells.
  std::vector<DynamicBitset> merged_vs(dim.num_instances(),
                                       DynamicBitset(universe));
  for (int t = 0; t < universe; ++t) {
    int run = GoverningRun(spec.perspectives, spec.semantics, t);
    for (InstanceId i = 0; i < dim.num_instances(); ++i) {
      if (run < 0) {  // Static: union across runs.
        for (const std::vector<DynamicBitset>& vs : run_vs) {
          if (vs[i].Test(t)) merged_vs[i].Set(t);
        }
      } else if (run_vs[run][i].Test(t)) {
        merged_vs[i].Set(t);
      }
    }
  }
  Schema merged_schema = base->schema();
  {
    Dimension* d_out = merged_schema.mutable_dimension(spec.varying_dim);
    std::unordered_set<MemberId> in_scope(relocate_scope.begin(),
                                          relocate_scope.end());
    for (InstanceId i = 0; i < dim.num_instances(); ++i) {
      if (in_scope.empty() || in_scope.count(dim.instance(i).member) > 0) {
        d_out->SetInstanceValidity(i, merged_vs[i]);
      }
    }
  }
  Cube merged(merged_schema, OptionsOf(*base));
  for (int r = 0; r < static_cast<int>(runs.size()); ++r) {
    if (Status s = interrupted(); !s.ok()) return fail(s);
    runs[r].ForEachChunkCell([&](const std::vector<int>& coords, CellValue v) {
      int governing = GoverningRun(spec.perspectives, spec.semantics,
                                   coords[param_dim]);
      if (governing >= 0 && governing != r) return;
      merged.SetCell(coords, v);
      ++stats->cells_moved;
    });
  }
  if (disk != nullptr) {
    stats->virtual_io_seconds = disk->stats().virtual_seconds - io_before;
  }
  return PerspectiveCube(&in, std::move(merged), spec.mode, spec.varying_dim,
                         scoped ? spec.scope_members : std::vector<MemberId>{});
}

std::vector<ChunkId> RelevantChunks(const Cube& in, int varying_dim,
                                    const std::vector<MemberId>& scope_members) {
  std::vector<ChunkId> out;
  if (scope_members.empty()) {
    in.ForEachChunk([&](ChunkId id, const Chunk&) { out.push_back(id); });
    return out;
  }
  const Dimension& dim = in.schema().dimension(varying_dim);
  std::vector<bool> wanted(dim.num_positions(), false);
  std::unordered_set<MemberId> scope(scope_members.begin(), scope_members.end());
  for (const MemberInstance& inst : dim.instances()) {
    if (scope.count(inst.member) > 0) wanted[inst.id] = true;
  }
  const ChunkLayout& layout = in.layout();
  const int width = layout.chunk_sizes()[varying_dim];
  in.ForEachChunk([&](ChunkId id, const Chunk&) {
    int base = layout.ChunkBase(id)[varying_dim];
    for (int pos = base; pos < base + width && pos < dim.num_positions(); ++pos) {
      if (wanted[pos]) {
        out.push_back(id);
        return;
      }
    }
  });
  return out;
}

std::vector<int> GraphOrderForTraversal(const MergeGraph& g,
                                        const ChunkLayout& layout,
                                        const std::vector<int>& dim_order) {
  assert(static_cast<int>(dim_order.size()) == layout.num_dims());
  // Rank of a chunk = its odometer index when dim_order[0] varies fastest.
  std::vector<int64_t> stride(layout.num_dims());
  int64_t acc = 1;
  for (size_t pos = 0; pos < dim_order.size(); ++pos) {
    stride[dim_order[pos]] = acc;
    acc *= layout.chunks_per_dim()[dim_order[pos]];
  }
  std::vector<int> order(g.num_nodes());
  for (int v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::vector<int64_t> rank(g.num_nodes());
  for (int v = 0; v < g.num_nodes(); ++v) {
    std::vector<int> cc = layout.ChunkCoords(g.chunk(v));
    int64_t r = 0;
    for (int d = 0; d < layout.num_dims(); ++d) r += stride[d] * cc[d];
    rank[v] = r;
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return rank[a] < rank[b]; });
  return order;
}

int MergeMemoryChunksForOrder(const Cube& in, int varying_dim,
                              const std::vector<MemberId>& members,
                              const std::vector<int>& dim_order) {
  MergeGraph graph = BuildMergeGraph(in, varying_dim, members);
  if (graph.num_nodes() == 0) return 0;
  std::vector<int> order = GraphOrderForTraversal(graph, in.layout(), dim_order);
  return PeakPebblesForOrder(graph, order);
}

MergeResidency MergeResidencyForOrder(const Cube& in, int varying_dim,
                                      const std::vector<MemberId>& members,
                                      const std::vector<int>& dim_order) {
  MergeResidency out;
  MergeGraph graph = BuildMergeGraph(in, varying_dim, members);
  if (graph.num_nodes() == 0) return out;
  const ChunkLayout& layout = in.layout();

  // Traversal rank of each graph chunk when dim_order[0] varies fastest.
  std::vector<int64_t> stride(layout.num_dims());
  int64_t acc = 1;
  for (size_t pos = 0; pos < dim_order.size(); ++pos) {
    stride[dim_order[pos]] = acc;
    acc *= layout.chunks_per_dim()[dim_order[pos]];
  }
  std::vector<int64_t> rank(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    std::vector<int> cc = layout.ChunkCoords(graph.chunk(v));
    int64_t r = 0;
    for (int d = 0; d < layout.num_dims(); ++d) r += stride[d] * cc[d];
    rank[v] = r;
  }

  // A chunk is buffered from its own rank until the max rank among itself
  // and its merge partners.
  std::vector<std::pair<int64_t, int64_t>> intervals;
  intervals.reserve(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    int64_t release = rank[v];
    for (int w : graph.neighbors(v)) release = std::max(release, rank[w]);
    intervals.emplace_back(rank[v], release);
    out.buffer_steps += release - rank[v] + 1;
  }
  // Peak via an event sweep.
  std::vector<std::pair<int64_t, int>> events;
  events.reserve(intervals.size() * 2);
  for (const auto& [start, end] : intervals) {
    events.emplace_back(start, +1);
    events.emplace_back(end + 1, -1);
  }
  std::sort(events.begin(), events.end());
  int current = 0;
  for (const auto& [at, delta] : events) {
    (void)at;
    current += delta;
    out.peak_chunks = std::max(out.peak_chunks, current);
  }
  return out;
}

}  // namespace olap
