#include "whatif/pebbling.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <unordered_set>

namespace olap {

namespace {

// cost(x) = min over neighbours y of deg(y) - 1 (Sec. 5.2); 0 when isolated.
std::vector<int> NodeCosts(const MergeGraph& g) {
  std::vector<int> cost(g.num_nodes(), 0);
  for (int v = 0; v < g.num_nodes(); ++v) {
    int best = std::numeric_limits<int>::max();
    for (int w : g.neighbors(v)) best = std::min(best, g.degree(w) - 1);
    cost[v] = g.neighbors(v).empty() ? 0 : best;
  }
  return cost;
}

// True if all neighbours of `v` are pebbled (ever), i.e. v's pebble is
// removable.
bool Removable(const MergeGraph& g, const std::vector<bool>& pebbled_ever, int v) {
  for (int w : g.neighbors(v)) {
    if (!pebbled_ever[w]) return false;
  }
  return true;
}

}  // namespace

PebbleResult HeuristicPebble(const MergeGraph& g) {
  PebbleResult result;
  const int n = g.num_nodes();
  std::vector<int> cost = NodeCosts(g);
  std::vector<bool> in_p(n, false);   // Pebbled at some point.
  std::vector<bool> in_q(n, false);   // Currently holding a pebble.
  int q_count = 0;

  auto place = [&](int v) {
    in_p[v] = true;
    in_q[v] = true;
    ++q_count;
    result.order.push_back(v);
    result.peak_pebbles = std::max(result.peak_pebbles, q_count);
  };
  auto drain_removals = [&]() {
    bool removed = true;
    while (removed) {
      removed = false;
      for (int v = 0; v < n; ++v) {
        if (in_q[v] && Removable(g, in_p, v)) {
          in_q[v] = false;
          --q_count;
          removed = true;
        }
      }
    }
  };

  for (const std::vector<int>& comp : g.ConnectedComponents()) {
    // Start at the minimum-cost node (ties: smallest index — components are
    // sorted ascending).
    int start = comp[0];
    for (int v : comp) {
      if (cost[v] < cost[start]) start = v;
    }
    place(start);
    drain_removals();

    size_t placed_in_comp = 1;
    while (placed_in_comp < comp.size()) {
      // Candidate placements: unpebbled neighbours of the pebbled region.
      int best = -1;
      bool best_enables = false;
      for (int v : comp) {
        if (in_p[v]) continue;
        bool adjacent_to_p = false;
        for (int w : g.neighbors(v)) {
          if (in_p[w]) {
            adjacent_to_p = true;
            break;
          }
        }
        if (!adjacent_to_p) continue;
        // Would placing on v let some pebble (possibly v's own) come off?
        in_p[v] = true;
        bool enables = Removable(g, in_p, v);
        if (!enables) {
          for (int q = 0; q < n && !enables; ++q) {
            if (in_q[q] && Removable(g, in_p, q)) enables = true;
          }
        }
        in_p[v] = false;
        if (best < 0 || (enables && !best_enables) ||
            (enables == best_enables &&
             (cost[v] < cost[best] || (cost[v] == cost[best] && v < best)))) {
          best = v;
          best_enables = enables;
        }
      }
      if (best < 0) {
        // Disconnected remainder inside a component cannot happen; fall back
        // to the min-cost unpebbled node for safety.
        for (int v : comp) {
          if (!in_p[v] && (best < 0 || cost[v] < cost[best])) best = v;
        }
      }
      assert(best >= 0);
      place(best);
      ++placed_in_comp;
      drain_removals();
    }
    drain_removals();
    assert(q_count == 0 && "every pebble is removable once its component is read");
  }
  return result;
}

int PeakPebblesForOrder(const MergeGraph& g, const std::vector<int>& order) {
  const int n = g.num_nodes();
  assert(static_cast<int>(order.size()) == n);
  std::vector<bool> in_p(n, false), in_q(n, false);
  int q_count = 0, peak = 0;
  for (int v : order) {
    in_p[v] = true;
    in_q[v] = true;
    ++q_count;
    peak = std::max(peak, q_count);
    bool removed = true;
    while (removed) {
      removed = false;
      for (int u = 0; u < n; ++u) {
        if (in_q[u] && Removable(g, in_p, u)) {
          in_q[u] = false;
          --q_count;
          removed = true;
        }
      }
    }
  }
  return peak;
}

namespace {

// Depth-first feasibility check: can the whole graph be pebbled without ever
// exceeding `budget` pebbles? Removals are applied greedily (removing a
// removable pebble never hurts), so a state is (P, Q) with Q canonical.
class BudgetSearch {
 public:
  BudgetSearch(const MergeGraph& g, int budget) : g_(g), budget_(budget) {}

  bool Feasible() {
    uint32_t all = (g_.num_nodes() == 32)
                       ? ~uint32_t{0}
                       : ((uint32_t{1} << g_.num_nodes()) - 1);
    return Dfs(0, 0, all);
  }

 private:
  uint32_t Drain(uint32_t p, uint32_t q) const {
    bool removed = true;
    while (removed) {
      removed = false;
      for (int v = 0; v < g_.num_nodes(); ++v) {
        if ((q >> v) & 1) {
          bool ok = true;
          for (int w : g_.neighbors(v)) {
            if (((p >> w) & 1) == 0) {
              ok = false;
              break;
            }
          }
          if (ok) {
            q &= ~(uint32_t{1} << v);
            removed = true;
          }
        }
      }
    }
    return q;
  }

  bool Dfs(uint32_t p, uint32_t q, uint32_t all) {
    if (p == all) return true;
    uint64_t key = (static_cast<uint64_t>(p) << 32) | q;
    if (failed_.count(key)) return false;
    if (__builtin_popcount(q) < budget_) {
      for (int v = 0; v < g_.num_nodes(); ++v) {
        if ((p >> v) & 1) continue;
        uint32_t p2 = p | (uint32_t{1} << v);
        uint32_t q2 = Drain(p2, q | (uint32_t{1} << v));
        if (Dfs(p2, q2, all)) return true;
      }
    }
    failed_.insert(key);
    return false;
  }

  const MergeGraph& g_;
  int budget_;
  std::unordered_set<uint64_t> failed_;
};

}  // namespace

int OptimalPeakPebbles(const MergeGraph& g, int max_nodes) {
  if (g.num_nodes() > max_nodes || g.num_nodes() > 30) return -1;
  if (g.num_nodes() == 0) return 0;
  for (int budget = 1; budget <= g.num_nodes(); ++budget) {
    if (BudgetSearch(g, budget).Feasible()) return budget;
  }
  return g.num_nodes();
}

}  // namespace olap
