#ifndef OLAP_WHATIF_PERSPECTIVE_CUBE_H_
#define OLAP_WHATIF_PERSPECTIVE_CUBE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "agg/batch_eval.h"
#include "common/status.h"
#include "cube/cube.h"
#include "rules/rule.h"
#include "storage/chunk_pipeline.h"
#include "storage/simulated_disk.h"
#include "whatif/merge_graph.h"
#include "whatif/operators.h"
#include "whatif/perspective.h"

namespace olap {

// A complete what-if specification: the parsed form of the paper's extended
// MDX clauses
//
//   WITH PERSPECTIVE {p1,...,pk} FOR <dim> <semantics> <mode>    (negative)
//   WITH CHANGES R(m,o,n,t) <mode>                               (positive)
//   WITH INTRODUCE {(name, parent, ...)} FOR <dim> <mode>        (positive)
//
// A query may carry all three (introductions applied first, then positive
// changes, then perspectives).
struct WhatIfSpec {
  int varying_dim = -1;
  Perspectives perspectives;  // Empty => no negative scenario.
  Semantics semantics = Semantics::kStatic;
  EvalMode mode = EvalMode::kNonVisual;
  ChangeRelation changes;  // Empty => no positive scenario.
  // Hypothetical new members, applied before `changes` (a change may then
  // reference an introduced member). Empty => no introduction.
  std::vector<NewMemberSpec> introductions;
  // Optional Sec. 6.3 optimisation: restrict instance merging to these
  // members (the varying members actually in the query's scope). Empty =>
  // every member.
  std::vector<MemberId> scope_members;
  // Order the merge-relevant chunk reads by the Sec. 5.2 pebbling
  // heuristic instead of ascending chunk id: minimises the peak number of
  // chunks that must be co-resident for merging (EvalStats reports both).
  bool pebbling_read_order = false;
};

// How the perspective cube is computed (the paper's Fig. 11 comparison).
enum class EvalStrategy {
  // One pass: perspectives organised into ranges, structures imposed
  // directly (the paper's implementation).
  kDirect,
  // Upper-bound simulation: one single-perspective query per p_i plus
  // post-processing of the k result sets into one (the paper's
  // "Multiple MDX" series).
  kMultipleMdx,
};

// Work counters for one perspective-cube computation.
struct EvalStats {
  int64_t passes = 0;          // Scans over the relevant chunks.
  int64_t chunk_reads = 0;     // Chunks fetched (before cache).
  int64_t cells_moved = 0;     // Leaf cells written into the output.
  int64_t cells_seeded = 0;    // Cells written by introduction seeding rules.
  double virtual_io_seconds = 0.0;  // From the SimulatedDisk, if any.
  // Peak chunks that had to stay co-resident for instance merging, under
  // the read order actually used (Sec. 5.2's pebble count).
  int peak_merge_chunks = 0;
};

// The result of a what-if query: the transformed cube plus everything
// needed to evaluate derived cells under the requested mode.
//
// The input cube must outlive this object (non-visual evaluation and
// out-of-scope leaf reads go to it).
//
// When the computation was scoped to a member set (non-visual mode only),
// the output cube holds only the scoped members' relocated cells; leaf
// reads of other members transparently fall back to the input cube.
class PerspectiveCube {
 public:
  PerspectiveCube(const Cube* input, Cube output, EvalMode mode,
                  int varying_dim = -1,
                  std::vector<MemberId> scoped_members = {})
      : input_(input),
        output_(std::move(output)),
        mode_(mode),
        varying_dim_(varying_dim),
        scoped_members_(scoped_members.begin(), scoped_members.end()) {}

  const Cube& input() const { return *input_; }
  const Cube& output() const { return output_; }
  // For delta refresh: patch affected output chunks in place.
  Cube* mutable_output() { return &output_; }
  EvalMode mode() const { return mode_; }

  // Cell value under the query's evaluation mode:
  //  * leaf cells come from the transformed output cube (or the input cube
  //    for members outside a scoped computation);
  //  * derived cells are evaluated on the output cube (visual) or retained
  //    from the input cube (non-visual).
  // `rules` may be null (pure roll-up).
  // `batch` (nullable) is a prepared batched evaluator; it is used only for
  // the branch whose evaluation cube matches batch->data() (the output cube
  // in visual mode, the input cube otherwise) — other branches keep the
  // per-cell path.
  CellValue Evaluate(const CellRef& ref, const RuleSet* rules = nullptr,
                     const BatchCellEvaluator* batch = nullptr) const;

 private:
  bool InScope(MemberId m) const {
    return scoped_members_.empty() || scoped_members_.count(m) > 0;
  }

  const Cube* input_;
  Cube output_;
  EvalMode mode_;
  int varying_dim_;
  std::unordered_set<MemberId> scoped_members_;
};

// Computes the perspective cube for `spec` over `in`.
//
// `disk` (optional) charges every chunk fetched during the computation to
// the simulated device; `stats` (optional) receives work counters.
// `eval_threads` parallelises the Split/Relocate data movement over the
// shared thread pool; results are bit-identical at every thread count.
//
// `pipeline` (optional, needs `disk`) switches the read passes from the
// synchronous per-chunk charge loop to the out-of-core pipeline's windowed
// coalescing (ChunkPipeline::ChargeSchedule): the pebbling schedule is
// walked with a lookahead window and runs of adjacent chunk ids are
// charged as single ranged reads. A non-positive pin_budget resolves to
// max(peak_pebbles, lookahead) per merge pass — the Sec. 5.2 pebble count
// as a memory budget. Charging only; the computed cube is identical.
//
// `cancel` is polled at pass boundaries and threaded into the Split /
// Relocate data movement (chunk granularity); a stop request returns
// kCancelled / kDeadlineExceeded with no partially-built cube escaping.
Result<PerspectiveCube> ComputePerspectiveCube(
    const Cube& in, const WhatIfSpec& spec,
    EvalStrategy strategy = EvalStrategy::kDirect,
    SimulatedDisk* disk = nullptr, EvalStats* stats = nullptr,
    int eval_threads = 1, const ChunkPipelineOptions* pipeline = nullptr,
    const CancellationToken& cancel = {});

// --- Lemma 5.1 / Sec. 5.2 planning helpers --------------------------------

// Chunk ids that hold data of the scoped members' instances (the chunks a
// scoped perspective query must read), ascending.
std::vector<ChunkId> RelevantChunks(const Cube& in, int varying_dim,
                                    const std::vector<MemberId>& scope_members);

// Orders the merge graph's nodes by the position at which a full chunk-grid
// traversal in `dim_order` (dim_order[0] fastest) visits each node's chunk.
// Feeding the result to PeakPebblesForOrder measures the memory behaviour of
// that dimension order — the quantity compared by Lemma 5.1.
std::vector<int> GraphOrderForTraversal(const MergeGraph& g,
                                        const ChunkLayout& layout,
                                        const std::vector<int>& dim_order);

// Convenience: peak co-resident chunks when reading the grid in `dim_order`
// while honouring the merge dependencies of `members`.
int MergeMemoryChunksForOrder(const Cube& in, int varying_dim,
                              const std::vector<MemberId>& members,
                              const std::vector<int>& dim_order);

// The full memory picture behind Lemma 5.1. Each merge-graph chunk must
// stay buffered from the traversal step that reads it until the step that
// reads its last merge partner. Measured on the full chunk-grid timeline:
//  * peak_chunks      — max simultaneously buffered chunks;
//  * buffer_steps     — Σ over chunks of (release step - read step + 1),
//                       i.e. buffered-chunk × traversal-step area. This is
//                       the quantity a varying-dimension-first order
//                       shrinks dramatically ("we need to hold all those
//                       chunks in memory till the corresponding chunks ...
//                       are read in", Sec. 5.1).
struct MergeResidency {
  int peak_chunks = 0;
  int64_t buffer_steps = 0;
};
MergeResidency MergeResidencyForOrder(const Cube& in, int varying_dim,
                                      const std::vector<MemberId>& members,
                                      const std::vector<int>& dim_order);

}  // namespace olap

#endif  // OLAP_WHATIF_PERSPECTIVE_CUBE_H_
