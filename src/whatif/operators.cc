#include "whatif/operators.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "rules/evaluator.h"

namespace olap {

namespace {

// Rebuilds a cube with the same chunk geometry as `in` but (possibly)
// updated schema metadata.
CubeOptions OptionsOf(const Cube& in) {
  CubeOptions opts;
  opts.chunk_sizes = in.layout().chunk_sizes();
  return opts;
}

// owner[t] = position of the instance of `m` valid at moment t, or -1.
std::vector<int> OwnerByMoment(const Dimension& dim, MemberId m) {
  std::vector<int> owner(dim.parameter_leaf_count(), -1);
  for (const MemberInstance& inst : dim.instances()) {
    if (inst.member != m) continue;
    for (int t = inst.validity.FindFirst(); t >= 0;
         t = inst.validity.FindNext(t + 1)) {
      owner[t] = inst.id;
    }
  }
  return owner;
}

}  // namespace

Cube Select(const Cube& in, int dim, const std::function<bool(int)>& keep) {
  Cube out = in;
  const int n_positions = in.schema().dimension(dim).num_positions();
  for (int pos = 0; pos < n_positions; ++pos) {
    if (!keep(pos)) out.ClearSlice(dim, pos);
  }
  return out;
}

std::vector<bool> KeepMemberEquals(const Cube& in, int dim, MemberId m) {
  const Dimension& d = in.schema().dimension(dim);
  std::vector<bool> keep(d.num_positions(), false);
  for (int pos = 0; pos < d.num_positions(); ++pos) {
    keep[pos] = d.PositionMember(pos) == m;
  }
  return keep;
}

std::vector<bool> KeepDescendantOf(const Cube& in, int dim, MemberId ancestor) {
  const Dimension& d = in.schema().dimension(dim);
  std::vector<bool> keep(d.num_positions(), false);
  for (int pos : in.PositionsUnder(dim, AxisRef::OfMember(ancestor))) {
    keep[pos] = true;
  }
  return keep;
}

std::vector<bool> KeepValidityOverlaps(const Cube& in, int dim,
                                       const DynamicBitset& moments) {
  const Dimension& d = in.schema().dimension(dim);
  std::vector<bool> keep(d.num_positions(), true);
  if (!d.is_varying()) return keep;  // Non-varying: implicitly always valid.
  for (const MemberInstance& inst : d.instances()) {
    keep[inst.id] = !inst.validity.DisjointWith(moments);
  }
  return keep;
}

std::vector<bool> KeepWhereAnyValue(const Cube& in, int dim,
                                    const std::function<bool(double)>& pred) {
  std::vector<bool> keep(in.schema().dimension(dim).num_positions(), false);
  in.ForEachCell([&](const std::vector<int>& coords, CellValue v) {
    if (!keep[coords[dim]] && pred(v.value())) keep[coords[dim]] = true;
  });
  return keep;
}

Cube Relocate(const Cube& in, int varying_dim,
              const std::vector<DynamicBitset>& vs_out,
              const std::vector<MemberId>& scope_members,
              bool copy_out_of_scope, int64_t* cells_moved) {
  const Schema& schema_in = in.schema();
  const Dimension& d_in = schema_in.dimension(varying_dim);
  assert(d_in.is_varying());
  assert(static_cast<int>(vs_out.size()) == d_in.num_instances());
  const int param_dim = schema_in.parameter_of(varying_dim);
  assert(param_dim >= 0);

  std::unordered_set<MemberId> scope(scope_members.begin(), scope_members.end());
  const bool scope_all = scope.empty();

  // Output metadata: the transformed validity sets.
  Schema schema_out = schema_in;
  Dimension* d_out = schema_out.mutable_dimension(varying_dim);
  for (const MemberInstance& inst : d_in.instances()) {
    if (scope_all || scope.count(inst.member) > 0) {
      d_out->SetInstanceValidity(inst.id, vs_out[inst.id]);
    }
  }

  // dst_of[member][t]: the output instance owning moment t under vs_out.
  // Phi guarantees the vs_out of one member's instances stay disjoint, so
  // the assignment is unique (asserted).
  std::unordered_map<MemberId, std::vector<int>> dst_of;
  for (const MemberInstance& inst : d_in.instances()) {
    if (!scope_all && scope.count(inst.member) == 0) continue;
    auto [it, unused] = dst_of.try_emplace(
        inst.member, std::vector<int>(d_in.parameter_leaf_count(), -1));
    (void)unused;
    const DynamicBitset& vs = vs_out[inst.id];
    for (int t = vs.FindFirst(); t >= 0; t = vs.FindNext(t + 1)) {
      assert(it->second[t] == -1 && "output validity sets must be disjoint");
      it->second[t] = inst.id;
    }
  }

  Cube out(schema_out, OptionsOf(in));
  int64_t moved = 0;
  std::vector<int> dst_coords;
  auto relocate_cell = [&](const std::vector<int>& coords, CellValue v) {
    const MemberInstance& inst = d_in.instance(coords[varying_dim]);
    auto it = dst_of.find(inst.member);
    if (it == dst_of.end()) {  // Out of scope.
      if (copy_out_of_scope) {
        out.SetCell(coords, v);
        ++moved;
      }
      return;
    }
    const int t = coords[param_dim];
    // Only data at the instance actually valid at t participates: that is
    // Cin(d_t, t, e) in Definition 4.4.
    if (!inst.validity.Test(t)) return;
    const int dst = it->second[t];
    if (dst < 0) return;  // No output instance claims this moment.
    dst_coords = coords;
    dst_coords[varying_dim] = dst;
    out.SetCell(dst_coords, v);
    ++moved;
  };

  if (!scope_all && !copy_out_of_scope) {
    // Scoped relocation that drops out-of-scope data only needs to visit
    // the chunks holding scoped instances (the Sec. 6.3 confinement).
    std::vector<bool> wanted(d_in.num_positions(), false);
    for (const MemberInstance& inst : d_in.instances()) {
      if (scope.count(inst.member) > 0) wanted[inst.id] = true;
    }
    const ChunkLayout& layout = in.layout();
    const int width = layout.chunk_sizes()[varying_dim];
    in.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
      int chunk_base = layout.ChunkBase(id)[varying_dim];
      bool relevant = false;
      for (int pos = chunk_base;
           pos < chunk_base + width && pos < d_in.num_positions(); ++pos) {
        if (wanted[pos]) {
          relevant = true;
          break;
        }
      }
      if (!relevant) return;
      layout.ForEachCellInChunk(id, [&](const std::vector<int>& coords,
                                        int64_t offset) {
        CellValue v = chunk.Get(offset);
        if (!v.is_null()) relocate_cell(coords, v);
      });
    });
  } else {
    in.ForEachCell(relocate_cell);
  }
  if (cells_moved != nullptr) *cells_moved += moved;
  return out;
}

Result<Cube> Split(const Cube& in, int varying_dim, const ChangeRelation& r) {
  const Schema& schema_in = in.schema();
  const Dimension& d_in = schema_in.dimension(varying_dim);
  if (!d_in.is_varying()) {
    return Status::FailedPrecondition("Split requires a varying dimension");
  }
  if (!d_in.parameter_is_ordered()) {
    // Definition 4.5's "before t / from t onward" split needs an order.
    return Status::FailedPrecondition(
        "Split requires an ordered parameter dimension");
  }
  const int param_dim = schema_in.parameter_of(varying_dim);
  const int universe = d_in.parameter_leaf_count();

  Schema schema_out = schema_in;
  Dimension* d_out = schema_out.mutable_dimension(varying_dim);

  // Apply the change tuples to the metadata sequentially.
  std::unordered_set<MemberId> touched;
  for (const ChangeTuple& tuple : r) {
    if (tuple.moment < 0 || tuple.moment >= universe) {
      return Status::OutOfRange("change moment out of range");
    }
    InstanceId src = d_out->FindInstance(tuple.member, tuple.old_parent);
    if (src == kInvalidInstance) {
      return Status::NotFound("no instance of member under the stated old parent");
    }
    DynamicBitset after(universe);
    for (int t = tuple.moment; t < universe; ++t) after.Set(t);
    after &= d_out->instance(src).validity;
    if (after.None()) {
      return Status::FailedPrecondition(
          "old parent is not the member's parent at or after the change moment");
    }
    DynamicBitset before = d_out->instance(src).validity;
    before.Subtract(after);
    d_out->SetInstanceValidity(src, before);

    InstanceId dst = d_out->FindInstance(tuple.member, tuple.new_parent);
    if (dst == kInvalidInstance) {
      Result<InstanceId> added =
          d_out->AddInstance(tuple.member, tuple.new_parent, after);
      if (!added.ok()) return added.status();
      dst = *added;
    } else {
      DynamicBitset merged = d_out->instance(dst).validity;
      merged |= after;
      d_out->SetInstanceValidity(dst, merged);
    }
    touched.insert(tuple.member);
  }

  // Move the data: every moment of a touched member goes to the output
  // instance that owns it after the splits.
  std::unordered_map<MemberId, std::vector<int>> owner_out;
  for (MemberId m : touched) owner_out[m] = OwnerByMoment(*d_out, m);

  Cube out(schema_out, OptionsOf(in));
  std::vector<int> dst_coords;
  in.ForEachCell([&](const std::vector<int>& coords, CellValue v) {
    const MemberInstance& inst = d_in.instance(coords[varying_dim]);
    auto it = owner_out.find(inst.member);
    if (it == owner_out.end()) {
      out.SetCell(coords, v);
      return;
    }
    const int t = coords[param_dim];
    if (!inst.validity.Test(t)) return;  // Data at an invalid instance.
    const int dst = it->second[t];
    if (dst < 0) return;
    dst_coords = coords;
    dst_coords[varying_dim] = dst;
    out.SetCell(dst_coords, v);
  });
  return out;
}

Result<Cube> Allocate(const Cube& in, const AllocationSpec& spec) {
  if (spec.dim < 0 || spec.dim >= in.num_dims()) {
    return Status::InvalidArgument("allocation dimension out of range");
  }
  if (spec.fraction < 0.0 || spec.fraction > 1.0) {
    return Status::InvalidArgument("allocation fraction must be in [0, 1]");
  }
  std::vector<int> from_positions = in.PositionsUnder(spec.dim, spec.from);
  std::vector<int> to_positions = in.PositionsUnder(spec.dim, spec.to);
  if (from_positions.size() != 1 || to_positions.size() != 1) {
    return Status::InvalidArgument(
        "allocation source and target must each be a single leaf position");
  }
  const int from_pos = from_positions[0];
  const int to_pos = to_positions[0];
  if (from_pos == to_pos) {
    return Status::InvalidArgument("allocation source equals target");
  }

  // Region membership per dimension, as position masks.
  std::vector<std::vector<bool>> region_mask(in.num_dims());
  for (const auto& [dim, ref] : spec.region) {
    if (dim < 0 || dim >= in.num_dims()) {
      return Status::InvalidArgument("allocation region dimension out of range");
    }
    if (dim == spec.dim) {
      return Status::InvalidArgument(
          "allocation region cannot restrict the allocation dimension");
    }
    std::vector<bool>& mask = region_mask[dim];
    mask.assign(in.schema().dimension(dim).num_positions(), false);
    for (int pos : in.PositionsUnder(dim, ref)) mask[pos] = true;
  }

  Cube out = in;
  std::vector<int> dst_coords;
  // Collect the moves first (mutating while iterating would be unsound).
  std::vector<std::pair<std::vector<int>, double>> moves;
  in.ForEachCell([&](const std::vector<int>& coords, CellValue v) {
    if (coords[spec.dim] != from_pos) return;
    for (int d = 0; d < in.num_dims(); ++d) {
      if (!region_mask[d].empty() && !region_mask[d][coords[d]]) return;
    }
    moves.emplace_back(coords, v.value());
  });
  for (const auto& [coords, value] : moves) {
    double moved = value * spec.fraction;
    out.SetCell(coords, CellValue(value - moved));
    dst_coords = coords;
    dst_coords[spec.dim] = to_pos;
    CellValue target = out.GetCell(dst_coords) + CellValue(moved);
    out.SetCell(dst_coords, target);
  }
  return out;
}

CellValue EvalOperator(const Cube& c1, const RuleSet* rules, const Cube& c2,
                       const CellRef& ref) {
  (void)c1;  // C1 contributes the rule definitions, passed in `rules`.
  return CellEvaluator(c2, rules).Evaluate(ref);
}

}  // namespace olap
