#include "whatif/operators.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "rules/evaluator.h"

namespace olap {

namespace {

// Rebuilds a cube with the same chunk geometry as `in` but (possibly)
// updated schema metadata.
CubeOptions OptionsOf(const Cube& in) {
  CubeOptions opts;
  opts.chunk_sizes = in.layout().chunk_sizes();
  return opts;
}

// owner[t] = position of the instance of `m` valid at moment t, or -1.
std::vector<int> OwnerByMoment(const Dimension& dim, MemberId m) {
  std::vector<int> owner(dim.parameter_leaf_count(), -1);
  for (const MemberInstance& inst : dim.instances()) {
    if (inst.member != m) continue;
    for (int t = inst.validity.FindFirst(); t >= 0;
         t = inst.validity.FindNext(t + 1)) {
      owner[t] = inst.id;
    }
  }
  return owner;
}

// ---------------------------------------------------------------------------
// Chunk-native relocation kernel
// ---------------------------------------------------------------------------
//
// Both Relocate and Split move leaf cells along ONE dimension: a cell at
// (p, t, rest) goes to (dest(p, t), t, rest) or is dropped. The kernel
// precomputes dest as a position-indexed table, then copies contiguous cell
// runs chunk-to-chunk: for a fixed (p, t, leading coords) every trailing
// coordinate combination is one contiguous run in both the source and the
// destination chunk, so the inner loop is a ⊥-skipping raw-double copy with
// no coordinate vectors, no hash lookups and no per-cell chunk resolution.

// dest[p * universe + t] = output position receiving the cell, or -1 (drop).
// identity[p] / drop_all[p] classify whole rows so the kernel can
// block-copy or skip whole chunks without consulting the table per cell.
struct DestTable {
  int universe = 0;
  std::vector<int32_t> dest;
  std::vector<uint8_t> identity;
  std::vector<uint8_t> drop_all;

  void Init(int num_positions, int param_universe) {
    universe = param_universe;
    dest.assign(static_cast<size_t>(num_positions) * universe, -1);
    identity.assign(num_positions, 0);
    drop_all.assign(num_positions, 0);
  }

  // Derives the identity/drop_all row flags from the filled dest rows.
  void Classify() {
    const int num_positions = static_cast<int>(identity.size());
    for (int p = 0; p < num_positions; ++p) {
      const int32_t* row = dest.data() + static_cast<size_t>(p) * universe;
      bool ident = true, any = false;
      for (int t = 0; t < universe; ++t) {
        if (row[t] >= 0) any = true;
        if (row[t] != p) ident = false;
      }
      identity[p] = ident ? 1 : 0;
      drop_all[p] = any ? 0 : 1;
    }
  }

  int32_t At(int pos, int t) const {
    return dest[static_cast<size_t>(pos) * universe + t];
  }
};

// Applies `table` to every stored cell of `in`, producing a cube with
// schema `schema_out` and the same chunk sizes. Partitions the stored
// chunks into contiguous ranges handled by up to `threads` pool workers;
// each task writes a private chunk map, and the partial maps are merged in
// task order. Because every destination cell has exactly one source cell
// (validity sets are disjoint), the merged result is independent of the
// partitioning — outputs are bit-identical at every thread count.
Cube ApplyDestTable(const Cube& in, Schema schema_out, int varying_dim,
                    int param_dim, const DestTable& table, int threads,
                    int64_t* cells_moved, const CancellationToken& cancel) {
  Cube out(std::move(schema_out), OptionsOf(in));
  const ChunkLayout& lin = in.layout();
  const ChunkLayout& lout = out.layout();
  const int n = lin.num_dims();
  const int vd = varying_dim;

  // Row-major in-chunk strides for both layouts. They can differ only when
  // the varying extent changed (Split adding instances near a clamped
  // chunk edge); trailing dimensions shared by a run always match, so the
  // run length below is common to both.
  std::vector<int64_t> sin(n), sout(n);
  {
    int64_t a = 1, b = 1;
    for (int d = n - 1; d >= 0; --d) {
      sin[d] = a;
      a *= lin.chunk_sizes()[d];
      sout[d] = b;
      b *= lout.chunk_sizes()[d];
    }
  }

  // Runs span the trailing dimensions; coordinates at or before dimension
  // `j` stay fixed within a run. A run must hold (position, moment) — the
  // coordinates along (vd, param_dim) — constant, so j starts at the
  // slowest-varying of the two. But a dimension chunked at size 1 never
  // varies *within* a chunk at all, so it cannot break a run: shrink j past
  // any such dimension (vd additionally needs the output chunk size to be 1
  // so source and destination runs stay element-aligned). Ordinary interior
  // dimensions keep identical chunk sizes in both layouts and pass through.
  // j may reach -1, in which case the whole chunk is a single run.
  int j = std::max(vd, param_dim);
  while (j >= 0) {
    bool breaks_run;
    if (j == vd) {
      breaks_run = lin.chunk_sizes()[vd] != 1 || lout.chunk_sizes()[vd] != 1;
    } else if (j == param_dim) {
      breaks_run = lin.chunk_sizes()[j] != 1;
    } else {
      breaks_run = false;
    }
    if (breaks_run) break;
    --j;
  }
  const int64_t run_len = j >= 0 ? sin[j] : lin.cells_per_chunk();
  assert(run_len == (j >= 0 ? sout[j] : lout.cells_per_chunk()));

  // Chunk-grid strides (row-major over chunks_per_dim) of both grids.
  std::vector<int64_t> gstride(n), gstride_in(n);
  {
    int64_t acc = 1, acc_in = 1;
    for (int d = n - 1; d >= 0; --d) {
      gstride[d] = acc;
      acc *= lout.chunks_per_dim()[d];
      gstride_in[d] = acc_in;
      acc_in *= lin.chunks_per_dim()[d];
    }
  }

  const int csize_in_vd = lin.chunk_sizes()[vd];
  const int csize_out_vd = lout.chunk_sizes()[vd];
  const int64_t grid_in_vd = lin.chunks_per_dim()[vd];
  const int ext_in_vd = lin.extents()[vd];
  // Whole-chunk identity copies need 1:1 chunk correspondence.
  const bool same_grid = lin.chunk_sizes() == lout.chunk_sizes() &&
                         lin.chunks_per_dim() == lout.chunks_per_dim();

  // Snapshot the stored chunks (ascending id — std::map order). The
  // templated iteration avoids a std::function dispatch per chunk.
  std::vector<std::pair<ChunkId, const Chunk*>> stored;
  stored.reserve(in.NumStoredChunks());
  in.ForEachChunkWhile([&](ChunkId id, const Chunk& chunk) {
    stored.emplace_back(id, &chunk);
    return true;
  });
  if (stored.empty()) {
    if (cells_moved != nullptr) *cells_moved += 0;
    return out;
  }

  // Per-task scratch buffers, reused across chunks so the hot loop makes no
  // heap allocations (each task owns one; tasks never share).
  struct Scratch {
    std::vector<int> base;          // chunk base coordinate per dim
    std::vector<int> limit;         // in-extent iteration limit, dims 0..j
    std::vector<int> local_coords;  // odometer state, dims 0..j
  };

  // One source chunk: classify its varying-dimension positions, then either
  // skip it, block-merge it, or walk its (leading coords) runs.
  auto process_chunk = [&](ChunkId id, const Chunk& chunk,
                           std::map<ChunkId, Chunk>* local, int64_t* moved,
                           Scratch& scratch) {
    // The chunk's base position along vd, without materialising coordinate
    // vectors — classification runs for every stored chunk.
    const int vbase =
        static_cast<int>((id / gstride_in[vd]) % grid_in_vd) * csize_in_vd;
    const int vlimit = std::min(csize_in_vd, ext_in_vd - vbase);

    bool all_drop = true, all_ident = true;
    for (int lv = 0; lv < vlimit; ++lv) {
      const int p = vbase + lv;
      if (!table.drop_all[p]) all_drop = false;
      if (!table.identity[p]) all_ident = false;
    }
    if (all_drop) return;  // Sec. 6.3 confinement: chunk holds no scoped data.

    auto local_chunk = [&](ChunkId dst_id) -> Chunk* {
      auto it = local->find(dst_id);
      if (it == local->end()) {
        it = local->emplace(dst_id, Chunk(lout.cells_per_chunk())).first;
      }
      return &it->second;
    };

    if (all_ident && same_grid) {
      // Every position maps to itself at every moment: clone the chunk
      // wholesale. ⊥ cells are a canonical bit pattern, so a raw chunk copy
      // equals ⊥-init-then-merge bit for bit — one scan and one memcpy
      // instead of touching every cell twice. All-⊥ chunks stay unstored
      // (the per-cell path would never create them).
      const int64_t nonnull = chunk.CountNonNull();
      if (nonnull == 0) return;
      auto [it, inserted] = local->try_emplace(id, chunk);
      if (!inserted) it->second.MergeNonNullFrom(chunk);
      *moved += nonnull;
      return;
    }

    // Decompose the chunk id into grid coords once: fills the chunk's base
    // cell coordinate per dim and accumulates the destination chunk-grid id
    // minus the varying-dimension term (destinations differ only along vd).
    std::vector<int>& base = scratch.base;
    int64_t dst_id_base = 0;
    {
      int64_t rem = id;
      for (int d = 0; d < n; ++d) {
        const int64_t c = rem / gstride_in[d];
        rem %= gstride_in[d];
        if (d != vd) dst_id_base += c * gstride[d];
        base[d] = static_cast<int>(c) * lin.chunk_sizes()[d];
      }
    }

    // In-extent iteration limits for the leading dims (trailing padding is
    // all-⊥ and handled by the ⊥-skipping copy).
    std::vector<int>& limit = scratch.limit;
    for (int d = 0; d <= j; ++d) {
      limit[d] = std::min(lin.chunk_sizes()[d], lin.extents()[d] - base[d]);
    }

    ChunkId last_dst_id = -1;
    Chunk* dst_chunk = nullptr;
    // Dimensions past j are chunked at size 1 (coordinate pinned at the
    // chunk base), so index local_coords only when the dim is odometer-led.
    std::vector<int>& local_coords = scratch.local_coords;
    std::fill(local_coords.begin(), local_coords.end(), 0);
    while (true) {
      const int p = vbase + (vd <= j ? local_coords[vd] : 0);
      const int t =
          base[param_dim] + (param_dim <= j ? local_coords[param_dim] : 0);
      const int32_t dstv =
          table.identity[p] ? static_cast<int32_t>(p) : table.At(p, t);
      if (dstv >= 0) {
        int64_t src_off = 0;
        for (int d = 0; d <= j; ++d) src_off += local_coords[d] * sin[d];
        if (chunk.RunHasNonNull(src_off, run_len)) {
          const int dst_cv = dstv / csize_out_vd;
          const ChunkId dst_id = dst_id_base + dst_cv * gstride[vd];
          if (dst_id != last_dst_id) {
            dst_chunk = local_chunk(dst_id);
            last_dst_id = dst_id;
          }
          int64_t dst_off = (dstv - dst_cv * csize_out_vd) * sout[vd];
          for (int d = 0; d <= j; ++d) {
            if (d != vd) dst_off += local_coords[d] * sout[d];
          }
          *moved += dst_chunk->CopyRunFrom(chunk, src_off, dst_off, run_len);
        }
      }
      // Odometer over the leading dims, innermost fastest, within extents.
      int d = j;
      while (d >= 0) {
        if (++local_coords[d] < limit[d]) break;
        local_coords[d] = 0;
        --d;
      }
      if (d < 0) break;
    }
  };

  // Deterministic partitioning: contiguous ranges of the ascending stored
  // list. More tasks than executors for load balance; partial outputs are
  // disjoint in their non-⊥ cells, so the merge below is order-independent.
  // Serial runs use a single task so the merge degenerates to moving the
  // one partial map into the (empty) output cube.
  //
  // The fan-out is sized by the *effective* executor count — the requested
  // thread budget after the work-hinted core/work clamp — not by the
  // request itself: when the clamp collapses a run to few executors, extra
  // tasks only duplicate destination-chunk allocations across partial maps
  // and inflate the AdoptChunks merge (the former inverse thread scaling of
  // the fig13/split benchmarks on small machines).
  const int64_t work_units =
      static_cast<int64_t>(stored.size()) * in.layout().cells_per_chunk();
  const int executors = ThreadPool::ClampedExecutors(threads, work_units);
  const int num_tasks =
      executors <= 1 ? 1
                     : static_cast<int>(std::min<int64_t>(
                           stored.size(), static_cast<int64_t>(executors) * 4));
  std::vector<std::map<ChunkId, Chunk>> partial(num_tasks);
  std::vector<int64_t> moved_per_task(num_tasks, 0);
  auto run_task = [&](int64_t task) {
    Scratch scratch;
    scratch.base.resize(n);
    scratch.limit.resize(j + 1);
    scratch.local_coords.resize(j + 1);
    const size_t begin = stored.size() * task / num_tasks;
    const size_t end = stored.size() * (task + 1) / num_tasks;
    for (size_t i = begin; i < end; ++i) {
      // Chunk-granular poll: a cancelled pass leaves the output cube
      // partially filled — the caller must check the token and discard it.
      if (cancel.ShouldStop()) return;
      process_chunk(stored[i].first, *stored[i].second, &partial[task],
                    &moved_per_task[task], scratch);
    }
  };
  if (num_tasks <= 1) {
    for (int task = 0; task < num_tasks; ++task) run_task(task);
  } else {
    // Work-hinted: small relocations (few chunks) run inline instead of
    // paying pool fan-out latency, and executors never exceed the cores.
    ThreadPool::Shared().ParallelFor(num_tasks, threads, work_units, run_task,
                                     cancel);
  }

  int64_t moved = 0;
  for (int task = 0; task < num_tasks; ++task) {
    moved += moved_per_task[task];
    out.AdoptChunks(std::move(partial[task]));
  }
  if (cells_moved != nullptr) *cells_moved += moved;
  return out;
}

// The transformed schema shared by Relocate and RelocateReference.
Schema RelocateSchema(const Cube& in, int varying_dim,
                      const std::vector<DynamicBitset>& vs_out,
                      const std::unordered_set<MemberId>& scope,
                      bool scope_all) {
  Schema schema_out = in.schema();
  const Dimension& d_in = in.schema().dimension(varying_dim);
  Dimension* d_out = schema_out.mutable_dimension(varying_dim);
  for (const MemberInstance& inst : d_in.instances()) {
    if (scope_all || scope.count(inst.member) > 0) {
      d_out->SetInstanceValidity(inst.id, vs_out[inst.id]);
    }
  }
  return schema_out;
}

// dst_of[member][t]: the output instance owning moment t under vs_out.
// Phi guarantees the vs_out of one member's instances stay disjoint, so
// the assignment is unique (asserted).
std::unordered_map<MemberId, std::vector<int>> RelocateDstOf(
    const Dimension& d_in, const std::vector<DynamicBitset>& vs_out,
    const std::unordered_set<MemberId>& scope, bool scope_all) {
  std::unordered_map<MemberId, std::vector<int>> dst_of;
  for (const MemberInstance& inst : d_in.instances()) {
    if (!scope_all && scope.count(inst.member) == 0) continue;
    auto [it, unused] = dst_of.try_emplace(
        inst.member, std::vector<int>(d_in.parameter_leaf_count(), -1));
    (void)unused;
    const DynamicBitset& vs = vs_out[inst.id];
    for (int t = vs.FindFirst(); t >= 0; t = vs.FindNext(t + 1)) {
      assert(it->second[t] == -1 && "output validity sets must be disjoint");
      it->second[t] = inst.id;
    }
  }
  return dst_of;
}

// Applies the change tuples of a Split to the metadata sequentially,
// producing the output schema and the set of touched members. Shared by
// Split and SplitReference.
Result<Schema> SplitSchema(const Cube& in, int varying_dim,
                           const ChangeRelation& r,
                           std::unordered_set<MemberId>* touched) {
  const Schema& schema_in = in.schema();
  const Dimension& d_in = schema_in.dimension(varying_dim);
  if (!d_in.is_varying()) {
    return Status::FailedPrecondition("Split requires a varying dimension");
  }
  if (!d_in.parameter_is_ordered()) {
    // Definition 4.5's "before t / from t onward" split needs an order.
    return Status::FailedPrecondition(
        "Split requires an ordered parameter dimension");
  }
  const int universe = d_in.parameter_leaf_count();

  Schema schema_out = schema_in;
  Dimension* d_out = schema_out.mutable_dimension(varying_dim);
  for (const ChangeTuple& tuple : r) {
    if (tuple.moment < 0 || tuple.moment >= universe) {
      return Status::OutOfRange("change moment out of range");
    }
    InstanceId src = d_out->FindInstance(tuple.member, tuple.old_parent);
    if (src == kInvalidInstance) {
      return Status::NotFound("no instance of member under the stated old parent");
    }
    DynamicBitset after(universe);
    for (int t = tuple.moment; t < universe; ++t) after.Set(t);
    after &= d_out->instance(src).validity;
    if (after.None()) {
      return Status::FailedPrecondition(
          "old parent is not the member's parent at or after the change moment");
    }
    DynamicBitset before = d_out->instance(src).validity;
    before.Subtract(after);
    d_out->SetInstanceValidity(src, before);

    InstanceId dst = d_out->FindInstance(tuple.member, tuple.new_parent);
    if (dst == kInvalidInstance) {
      Result<InstanceId> added =
          d_out->AddInstance(tuple.member, tuple.new_parent, after);
      if (!added.ok()) return added.status();
      dst = *added;
    } else {
      DynamicBitset merged = d_out->instance(dst).validity;
      merged |= after;
      d_out->SetInstanceValidity(dst, merged);
    }
    touched->insert(tuple.member);
  }
  return schema_out;
}

}  // namespace

// Per-operator instrumentation (the paper's cube algebra: σ Select,
// ρ Relocate, S Split, Φ Allocate, E Evaluate). Each operator application
// opens one trace span and bumps one call counter; E is counted but not
// spanned because it runs once per derived cell — a span there would blow
// the <5% overhead budget (DESIGN.md §8).
#define OLAP_OPERATOR_SCOPE(op_name)                                      \
  TraceSpan op_span("op." op_name);                                       \
  do {                                                                    \
    static Counter* op_calls =                                            \
        MetricsRegistry::Global().counter("op." op_name ".calls");        \
    op_calls->Increment();                                                \
  } while (0)

Cube Select(const Cube& in, int dim, const std::function<bool(int)>& keep) {
  OLAP_OPERATOR_SCOPE("select");
  Cube out = in;
  const int n_positions = in.schema().dimension(dim).num_positions();
  for (int pos = 0; pos < n_positions; ++pos) {
    if (!keep(pos)) out.ClearSlice(dim, pos);
  }
  return out;
}

std::vector<bool> KeepMemberEquals(const Cube& in, int dim, MemberId m) {
  const Dimension& d = in.schema().dimension(dim);
  std::vector<bool> keep(d.num_positions(), false);
  for (int pos = 0; pos < d.num_positions(); ++pos) {
    keep[pos] = d.PositionMember(pos) == m;
  }
  return keep;
}

std::vector<bool> KeepDescendantOf(const Cube& in, int dim, MemberId ancestor) {
  const Dimension& d = in.schema().dimension(dim);
  std::vector<bool> keep(d.num_positions(), false);
  for (int pos : in.PositionsUnder(dim, AxisRef::OfMember(ancestor))) {
    keep[pos] = true;
  }
  return keep;
}

std::vector<bool> KeepValidityOverlaps(const Cube& in, int dim,
                                       const DynamicBitset& moments) {
  const Dimension& d = in.schema().dimension(dim);
  std::vector<bool> keep(d.num_positions(), true);
  if (!d.is_varying()) return keep;  // Non-varying: implicitly always valid.
  for (const MemberInstance& inst : d.instances()) {
    keep[inst.id] = !inst.validity.DisjointWith(moments);
  }
  return keep;
}

std::vector<bool> KeepWhereAnyValue(const Cube& in, int dim,
                                    const std::function<bool(double)>& pred) {
  std::vector<bool> keep(in.schema().dimension(dim).num_positions(), false);
  int unmarked = static_cast<int>(keep.size());
  const ChunkLayout& layout = in.layout();
  const std::vector<int>& csize = layout.chunk_sizes();
  // In-chunk stride of `dim` (row-major, last dimension fastest): walking
  // the validity bitmap directly skips every ⊥ and padded cell, and only
  // the one coordinate that matters is derived per set bit — no coords
  // vector, no per-cell CellValue.
  int64_t stride = 1;
  for (int d = layout.num_dims() - 1; d > dim; --d) stride *= csize[d];
  in.ForEachChunkWhile([&](ChunkId id, const Chunk& chunk) {
    const int base = layout.ChunkBase(id)[dim];
    const double* vals = chunk.ValuesSpan();
    chunk.NullBits().ForEachSetBit([&](int off) {
      if (unmarked == 0) return;  // Everything marked; skim the rest.
      const int pos = base + static_cast<int>((off / stride) % csize[dim]);
      if (pos >= static_cast<int>(keep.size()) || keep[pos]) return;
      if (pred(vals[off])) {
        keep[pos] = true;
        --unmarked;
      }
    });
    return unmarked > 0;  // Early-exit: stop scanning further chunks.
  });
  return keep;
}

Cube Relocate(const Cube& in, int varying_dim,
              const std::vector<DynamicBitset>& vs_out,
              const std::vector<MemberId>& scope_members,
              bool copy_out_of_scope, int64_t* cells_moved, int threads,
              const CancellationToken& cancel) {
  OLAP_OPERATOR_SCOPE("relocate");
  const Dimension& d_in = in.schema().dimension(varying_dim);
  assert(d_in.is_varying());
  assert(static_cast<int>(vs_out.size()) == d_in.num_instances());
  const int param_dim = in.schema().parameter_of(varying_dim);
  assert(param_dim >= 0);

  std::unordered_set<MemberId> scope(scope_members.begin(), scope_members.end());
  const bool scope_all = scope.empty();
  Schema schema_out = RelocateSchema(in, varying_dim, vs_out, scope, scope_all);
  // dst_flat[member * universe + t]: the output instance owning moment t
  // under vs_out, or -1. Flat arrays keyed by member id replace the
  // unordered_map<MemberId, vector<int>> of the reference path — building
  // that map costs thousands of small allocations, which on wide dimensions
  // dwarfs the kernel's actual data movement.
  const int universe = d_in.parameter_leaf_count();
  MemberId max_member = -1;
  for (const MemberInstance& inst : d_in.instances()) {
    max_member = std::max(max_member, inst.member);
  }
  std::vector<int32_t> dst_flat(static_cast<size_t>(max_member + 1) * universe,
                                -1);
  std::vector<uint8_t> in_scope(max_member + 1, 0);
  for (const MemberInstance& inst : d_in.instances()) {
    if (!scope_all && scope.count(inst.member) == 0) continue;
    in_scope[inst.member] = 1;
    int32_t* row = dst_flat.data() + static_cast<size_t>(inst.member) * universe;
    vs_out[inst.id].ForEachSetBit([&](int t) {
      assert(row[t] == -1 && "output validity sets must be disjoint");
      row[t] = static_cast<int32_t>(inst.id);
    });
  }

  // Position-indexed destination table: destinations resolve once per axis
  // position here, never in the kernel.
  DestTable table;
  table.Init(d_in.num_positions(), universe);
  for (int p = 0; p < d_in.num_positions(); ++p) {
    const MemberInstance& inst = d_in.instance(p);
    int32_t* row = table.dest.data() + static_cast<size_t>(p) * universe;
    if (!in_scope[inst.member]) {  // Out of scope.
      if (copy_out_of_scope) {
        for (int t = 0; t < universe; ++t) row[t] = p;
      }
      continue;
    }
    // Only data at the instance actually valid at t participates: that is
    // Cin(d_t, t, e) in Definition 4.4.
    const int32_t* src =
        dst_flat.data() + static_cast<size_t>(inst.member) * universe;
    inst.validity.ForEachSetBit([&](int t) { row[t] = src[t]; });
  }
  table.Classify();
  return ApplyDestTable(in, std::move(schema_out), varying_dim, param_dim,
                        table, threads, cells_moved, cancel);
}

Cube RelocateReference(const Cube& in, int varying_dim,
                       const std::vector<DynamicBitset>& vs_out,
                       const std::vector<MemberId>& scope_members,
                       bool copy_out_of_scope, int64_t* cells_moved) {
  const Schema& schema_in = in.schema();
  const Dimension& d_in = schema_in.dimension(varying_dim);
  assert(d_in.is_varying());
  assert(static_cast<int>(vs_out.size()) == d_in.num_instances());
  const int param_dim = schema_in.parameter_of(varying_dim);
  assert(param_dim >= 0);

  std::unordered_set<MemberId> scope(scope_members.begin(), scope_members.end());
  const bool scope_all = scope.empty();
  Schema schema_out = RelocateSchema(in, varying_dim, vs_out, scope, scope_all);
  std::unordered_map<MemberId, std::vector<int>> dst_of =
      RelocateDstOf(d_in, vs_out, scope, scope_all);

  Cube out(schema_out, OptionsOf(in));
  int64_t moved = 0;
  std::vector<int> dst_coords;
  auto relocate_cell = [&](const std::vector<int>& coords, CellValue v) {
    const MemberInstance& inst = d_in.instance(coords[varying_dim]);
    auto it = dst_of.find(inst.member);
    if (it == dst_of.end()) {  // Out of scope.
      if (copy_out_of_scope) {
        out.SetCell(coords, v);
        ++moved;
      }
      return;
    }
    const int t = coords[param_dim];
    if (!inst.validity.Test(t)) return;
    const int dst = it->second[t];
    if (dst < 0) return;  // No output instance claims this moment.
    dst_coords = coords;
    dst_coords[varying_dim] = dst;
    out.SetCell(dst_coords, v);
    ++moved;
  };

  if (!scope_all && !copy_out_of_scope) {
    // Scoped relocation that drops out-of-scope data only needs to visit
    // the chunks holding scoped instances (the Sec. 6.3 confinement).
    std::vector<bool> wanted(d_in.num_positions(), false);
    for (const MemberInstance& inst : d_in.instances()) {
      if (scope.count(inst.member) > 0) wanted[inst.id] = true;
    }
    const ChunkLayout& layout = in.layout();
    const int width = layout.chunk_sizes()[varying_dim];
    in.ForEachChunk([&](ChunkId id, const Chunk& chunk) {
      int chunk_base = layout.ChunkBase(id)[varying_dim];
      bool relevant = false;
      for (int pos = chunk_base;
           pos < chunk_base + width && pos < d_in.num_positions(); ++pos) {
        if (wanted[pos]) {
          relevant = true;
          break;
        }
      }
      if (!relevant) return;
      layout.ForEachCellInChunk(id, [&](const std::vector<int>& coords,
                                        int64_t offset) {
        if (!chunk.IsNull(offset)) {
          relocate_cell(coords, CellValue(chunk.ValueAt(offset)));
        }
      });
    });
  } else {
    in.ForEachCell(relocate_cell);
  }
  if (cells_moved != nullptr) *cells_moved += moved;
  return out;
}

Result<Cube> Split(const Cube& in, int varying_dim, const ChangeRelation& r,
                   int threads, const CancellationToken& cancel) {
  OLAP_OPERATOR_SCOPE("split");
  std::unordered_set<MemberId> touched;
  Result<Schema> schema_out = SplitSchema(in, varying_dim, r, &touched);
  if (!schema_out.ok()) {
    op_span.SetError(schema_out.status());
    return schema_out.status();
  }
  const Dimension& d_in = in.schema().dimension(varying_dim);
  const Dimension& d_out = schema_out->dimension(varying_dim);
  const int param_dim = in.schema().parameter_of(varying_dim);
  const int universe = d_in.parameter_leaf_count();

  // Every moment of a touched member goes to the output instance that owns
  // it after the splits; untouched members copy through unchanged.
  std::unordered_map<MemberId, std::vector<int>> owner_out;
  for (MemberId m : touched) owner_out[m] = OwnerByMoment(d_out, m);

  DestTable table;
  table.Init(d_in.num_positions(), universe);
  for (int p = 0; p < d_in.num_positions(); ++p) {
    const MemberInstance& inst = d_in.instance(p);
    int32_t* row = table.dest.data() + static_cast<size_t>(p) * universe;
    auto it = owner_out.find(inst.member);
    if (it == owner_out.end()) {
      for (int t = 0; t < universe; ++t) row[t] = p;
      continue;
    }
    for (int t = inst.validity.FindFirst(); t >= 0;
         t = inst.validity.FindNext(t + 1)) {
      row[t] = it->second[t];
    }
  }
  table.Classify();
  return ApplyDestTable(in, *std::move(schema_out), varying_dim, param_dim,
                        table, threads, nullptr, cancel);
}

Result<Cube> SplitReference(const Cube& in, int varying_dim,
                            const ChangeRelation& r) {
  std::unordered_set<MemberId> touched;
  Result<Schema> schema_out = SplitSchema(in, varying_dim, r, &touched);
  if (!schema_out.ok()) return schema_out.status();
  const Dimension& d_in = in.schema().dimension(varying_dim);
  const Dimension& d_out = schema_out->dimension(varying_dim);
  const int param_dim = in.schema().parameter_of(varying_dim);

  std::unordered_map<MemberId, std::vector<int>> owner_out;
  for (MemberId m : touched) owner_out[m] = OwnerByMoment(d_out, m);

  Cube out(*schema_out, OptionsOf(in));
  std::vector<int> dst_coords;
  in.ForEachCell([&](const std::vector<int>& coords, CellValue v) {
    const MemberInstance& inst = d_in.instance(coords[varying_dim]);
    auto it = owner_out.find(inst.member);
    if (it == owner_out.end()) {
      out.SetCell(coords, v);
      return;
    }
    const int t = coords[param_dim];
    if (!inst.validity.Test(t)) return;  // Data at an invalid instance.
    const int dst = it->second[t];
    if (dst < 0) return;
    dst_coords = coords;
    dst_coords[varying_dim] = dst;
    out.SetCell(dst_coords, v);
  });
  return out;
}

Status ApplyIntroductions(Schema* schema, int varying_dim,
                          const std::vector<NewMemberSpec>& specs) {
  if (varying_dim < 0 || varying_dim >= schema->num_dimensions()) {
    return Status::InvalidArgument("introduce dimension out of range");
  }
  Dimension* d = schema->mutable_dimension(varying_dim);
  if (!d->is_varying()) {
    return Status::FailedPrecondition(
        "Introduce requires a varying dimension");
  }
  const int universe = d->parameter_leaf_count();
  for (const NewMemberSpec& spec : specs) {
    Result<MemberId> parent = d->FindMember(spec.parent);
    if (!parent.ok()) {
      return Status::NotFound("introduce parent '" + spec.parent +
                              "' not found in dimension '" + d->name() + "'");
    }
    if (spec.inner) {
      if (spec.seed != NewMemberSpec::Seed::kNone) {
        return Status::InvalidArgument(
            "only introduced leaves can carry a seeding rule");
      }
      Result<MemberId> added = d->AddInnerMember(spec.name, *parent);
      if (!added.ok()) return added.status();
      continue;
    }
    if (spec.from_moment < 0 || spec.from_moment >= universe) {
      return Status::OutOfRange("introduce epoch start out of range");
    }
    Result<MemberId> added = d->AddMember(spec.name, *parent);
    if (!added.ok()) return added.status();
    // AddMember created one all-moments instance; restrict it to the
    // member's epoch [from_moment, universe).
    InstanceId inst = d->FindInstance(*added, *parent);
    assert(inst != kInvalidInstance);
    DynamicBitset epoch(universe);
    for (int t = spec.from_moment; t < universe; ++t) epoch.Set(t);
    d->SetInstanceValidity(inst, std::move(epoch));
  }
  return Status::Ok();
}

namespace {

// The seeding half of Introduce, applied to the already-widened cube.
// Strictly serial and ordered (specs in order; cells in coordinate order),
// so the kernel path and the reference path share it verbatim.
Status SeedIntroducedCells(Cube* out, int varying_dim,
                           const std::vector<NewMemberSpec>& specs,
                           int64_t* cells_seeded) {
  const Schema& schema = out->schema();
  const Dimension& d = schema.dimension(varying_dim);
  const int param_dim = schema.parameter_of(varying_dim);
  for (const NewMemberSpec& spec : specs) {
    if (spec.inner || spec.seed == NewMemberSpec::Seed::kNone) continue;
    const bool transfer = spec.seed == NewMemberSpec::Seed::kTransfer;
    if (spec.factor < 0.0 || (transfer && spec.factor > 1.0)) {
      return Status::InvalidArgument(
          transfer ? "introduce transfer fraction must be in [0, 1]"
                   : "introduce clone factor must be >= 0");
    }
    Result<MemberId> source = d.FindMember(spec.source);
    if (!source.ok()) {
      return Status::NotFound("introduce seed source '" + spec.source +
                              "' not found in dimension '" + d.name() + "'");
    }
    if (!d.member(*source).is_leaf()) {
      return Status::InvalidArgument(
          "introduce seed source must be a leaf member");
    }
    Result<MemberId> target = d.FindMember(spec.name);
    Result<MemberId> parent = d.FindMember(spec.parent);
    assert(target.ok() && parent.ok());  // Just introduced above.
    if (*source == *target) {
      return Status::InvalidArgument("introduced member cannot seed itself");
    }
    const InstanceId dst = d.FindInstance(*target, *parent);
    assert(dst != kInvalidInstance);
    if (spec.factor == 0.0) continue;  // Zero delta: introduced empty.

    // Collect first (mutating while iterating is unsound), then apply in
    // coordinate order so the result is independent of chunk-map order.
    std::vector<std::pair<std::vector<int>, double>> moves;
    out->ForEachChunkCell([&](const std::vector<int>& coords, CellValue v) {
      const MemberInstance& inst = d.instance(coords[varying_dim]);
      if (inst.member != *source) return;
      const int t = coords[param_dim];
      if (t < spec.from_moment) return;     // Outside the epoch.
      if (!inst.validity.Test(t)) return;   // Data at an invalid instance.
      moves.emplace_back(coords, v.value());
    });
    std::sort(moves.begin(), moves.end());
    int64_t seeded = 0;
    std::vector<int> dst_coords;
    for (const auto& [coords, value] : moves) {
      if (transfer) {
        out->SetCell(coords, CellValue(value * (1.0 - spec.factor)));
        ++seeded;
      }
      dst_coords = coords;
      dst_coords[varying_dim] = dst;
      out->SetCell(dst_coords, CellValue(value * spec.factor));
      ++seeded;
    }
    if (cells_seeded) *cells_seeded += seeded;
  }
  return Status::Ok();
}

}  // namespace

Result<Cube> IntroduceMembers(const Cube& in, int varying_dim,
                              const std::vector<NewMemberSpec>& specs,
                              int threads, const CancellationToken& cancel,
                              int64_t* cells_seeded) {
  OLAP_OPERATOR_SCOPE("introduce");
  Schema schema_out = in.schema();
  Status applied = ApplyIntroductions(&schema_out, varying_dim, specs);
  if (!applied.ok()) {
    op_span.SetError(applied);
    return applied;
  }
  const Dimension& d_in = in.schema().dimension(varying_dim);
  const int param_dim = in.schema().parameter_of(varying_dim);
  const int universe = d_in.parameter_leaf_count();

  // Existing cells copy through unchanged: an identity destination table
  // over the input positions. The output grid is wider (new instances
  // append positions); the kernel handles the differing chunk grids.
  DestTable table;
  table.Init(d_in.num_positions(), universe);
  for (int p = 0; p < d_in.num_positions(); ++p) {
    int32_t* row = table.dest.data() + static_cast<size_t>(p) * universe;
    for (int t = 0; t < universe; ++t) row[t] = p;
  }
  table.Classify();
  Cube out = ApplyDestTable(in, std::move(schema_out), varying_dim, param_dim,
                            table, threads, nullptr, cancel);
  if (Status s = cancel.Poll("whatif.introduce"); !s.ok()) {
    op_span.SetError(s);
    return s;
  }
  Status seeded = SeedIntroducedCells(&out, varying_dim, specs, cells_seeded);
  if (!seeded.ok()) {
    op_span.SetError(seeded);
    return seeded;
  }
  return out;
}

Result<Cube> IntroduceMembersReference(const Cube& in, int varying_dim,
                                       const std::vector<NewMemberSpec>& specs,
                                       int64_t* cells_seeded) {
  Schema schema_out = in.schema();
  Status applied = ApplyIntroductions(&schema_out, varying_dim, specs);
  if (!applied.ok()) return applied;
  Cube out(schema_out, OptionsOf(in));
  in.ForEachCell(
      [&](const std::vector<int>& coords, CellValue v) { out.SetCell(coords, v); });
  Status seeded = SeedIntroducedCells(&out, varying_dim, specs, cells_seeded);
  if (!seeded.ok()) return seeded;
  return out;
}

Result<Cube> Allocate(const Cube& in, const AllocationSpec& spec) {
  OLAP_OPERATOR_SCOPE("allocate");
  if (spec.dim < 0 || spec.dim >= in.num_dims()) {
    return Status::InvalidArgument("allocation dimension out of range");
  }
  if (spec.fraction < 0.0 || spec.fraction > 1.0) {
    return Status::InvalidArgument("allocation fraction must be in [0, 1]");
  }
  std::vector<int> from_positions = in.PositionsUnder(spec.dim, spec.from);
  std::vector<int> to_positions = in.PositionsUnder(spec.dim, spec.to);
  if (from_positions.size() != 1 || to_positions.size() != 1) {
    return Status::InvalidArgument(
        "allocation source and target must each be a single leaf position");
  }
  const int from_pos = from_positions[0];
  const int to_pos = to_positions[0];
  if (from_pos == to_pos) {
    return Status::InvalidArgument("allocation source equals target");
  }

  // Region membership per dimension, as position masks.
  std::vector<std::vector<bool>> region_mask(in.num_dims());
  for (const auto& [dim, ref] : spec.region) {
    if (dim < 0 || dim >= in.num_dims()) {
      return Status::InvalidArgument("allocation region dimension out of range");
    }
    if (dim == spec.dim) {
      return Status::InvalidArgument(
          "allocation region cannot restrict the allocation dimension");
    }
    std::vector<bool>& mask = region_mask[dim];
    mask.assign(in.schema().dimension(dim).num_positions(), false);
    for (int pos : in.PositionsUnder(dim, ref)) mask[pos] = true;
  }

  Cube out = in;
  std::vector<int> dst_coords;
  // Collect the moves first (mutating while iterating would be unsound).
  std::vector<std::pair<std::vector<int>, double>> moves;
  in.ForEachChunkCell([&](const std::vector<int>& coords, CellValue v) {
    if (coords[spec.dim] != from_pos) return;
    for (int d = 0; d < in.num_dims(); ++d) {
      if (!region_mask[d].empty() && !region_mask[d][coords[d]]) return;
    }
    moves.emplace_back(coords, v.value());
  });
  for (const auto& [coords, value] : moves) {
    double moved = value * spec.fraction;
    out.SetCell(coords, CellValue(value - moved));
    dst_coords = coords;
    dst_coords[spec.dim] = to_pos;
    CellValue target = out.GetCell(dst_coords) + CellValue(moved);
    out.SetCell(dst_coords, target);
  }
  return out;
}

CellValue EvalOperator(const Cube& c1, const RuleSet* rules, const Cube& c2,
                       const CellRef& ref) {
  (void)c1;  // C1 contributes the rule definitions, passed in `rules`.
  static Counter* op_calls = MetricsRegistry::Global().counter("op.evaluate.calls");
  op_calls->Increment();
  return CellEvaluator(c2, rules).Evaluate(ref);
}

}  // namespace olap
