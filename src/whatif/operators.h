#ifndef OLAP_WHATIF_OPERATORS_H_
#define OLAP_WHATIF_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "cube/cube.h"
#include "rules/rule.h"
#include "whatif/perspective.h"

namespace olap {

// ---------------------------------------------------------------------------
// Selection (Definition 4.1)
// ---------------------------------------------------------------------------

// σ_p: keeps only the axis positions of `dim` for which `keep(pos)` is true;
// the sub-cubes of every other position are removed (cells set to ⊥).
// The output schema is unchanged — non-kept positions are simply inactive.
Cube Select(const Cube& in, int dim, const std::function<bool(int)>& keep);

// Predicate helpers producing keep-sets (Sec. 4.1's example predicates).

// Positions whose member equals `m` / is a descendant of `m`.
std::vector<bool> KeepMemberEquals(const Cube& in, int dim, MemberId m);
std::vector<bool> KeepDescendantOf(const Cube& in, int dim, MemberId ancestor);
// D.VS ∩ moments ≠ ∅ — varying dimensions only; non-varying positions are
// all kept (their validity is implicitly the full universe).
std::vector<bool> KeepValidityOverlaps(const Cube& in, int dim,
                                       const DynamicBitset& moments);
// Value predicate σ_{D θ c}: keep positions of `dim` that have at least one
// cell in the cube slice satisfying pred(value), e.g. sales > 1000 with the
// other coordinates restricted beforehand via Select. Stops scanning as
// soon as every position along `dim` is marked.
std::vector<bool> KeepWhereAnyValue(const Cube& in, int dim,
                                    const std::function<bool(double)>& pred);

// ---------------------------------------------------------------------------
// Relocate (Definition 4.4)
// ---------------------------------------------------------------------------

// ρ(Cin, ṼS): builds the output cube whose leaf cells are
//     Cout(d, t, e) = Cin(d_t, t, e)   if t ∈ ṼS(d)
//     Cout(d, t, e) = ⊥                otherwise,
// where d_t is the instance of d's member valid at t in the INPUT cube.
// Non-leaf cells are not materialised (the evaluation mode decides which
// cube derived cells are computed from — see PerspectiveCube).
//
// `vs_out` is indexed by InstanceId of `varying_dim`; the output cube's
// dimension metadata is updated to these validity sets.
//
// `scope_members` optionally confines the data movement to instances of the
// given members (the Sec. 6.3 optimisation: "the instance merge operation is
// confined to query result sections with varying members"); cells of other
// members are copied through unchanged when `copy_out_of_scope` is true and
// omitted from the output when it is false (the caller then reads them from
// the input cube — see PerspectiveCube). Empty scope = all members.
// `cells_moved`, when non-null, receives the number of leaf cells written.
//
// Data movement is chunk-native: a position-indexed destination table is
// precomputed along the varying/parameter dimensions, then contiguous cell
// runs are copied chunk-to-chunk (Chunk::CopyRunFrom), partitioned across
// `threads` pool workers by source-chunk range with per-task outputs merged
// deterministically. The result is bit-identical to RelocateReference at
// every thread count.
//
// `cancel` is polled at source-chunk granularity; a pass that observes a
// stop request returns a partially-filled output cube that the caller must
// check the token for and discard.
Cube Relocate(const Cube& in, int varying_dim,
              const std::vector<DynamicBitset>& vs_out,
              const std::vector<MemberId>& scope_members = {},
              bool copy_out_of_scope = true, int64_t* cells_moved = nullptr,
              int threads = 1, const CancellationToken& cancel = {});

// The serial cell-at-a-time implementation of Relocate (ForEachCell +
// SetCell per cell). Kept as the oracle for the randomized equivalence
// tests and the bench_kernels baseline; not used on the query path.
Cube RelocateReference(const Cube& in, int varying_dim,
                       const std::vector<DynamicBitset>& vs_out,
                       const std::vector<MemberId>& scope_members = {},
                       bool copy_out_of_scope = true,
                       int64_t* cells_moved = nullptr);

// ---------------------------------------------------------------------------
// Split (Definition 4.5) — positive scenarios
// ---------------------------------------------------------------------------

// One tuple of the positive-change relation R(m, o, n, t): "o is the current
// parent of m at moment t, hypothetically change it to n from t onward".
struct ChangeTuple {
  MemberId member = kInvalidMember;      // m: leaf of the varying dimension.
  MemberId old_parent = kInvalidMember;  // o: current parent at t.
  MemberId new_parent = kInvalidMember;  // n: hypothetical parent from t on.
  int moment = 0;                        // t: parameter-leaf ordinal.
};
using ChangeRelation = std::vector<ChangeTuple>;

// S(Cin, R): for every (m, o, n, t) splits the instance o/m into a
// "before t" version (keeps moments < t) and an "after t" version n/m
// (receives moments >= t and the corresponding cells). Fails when o is not
// actually m's parent over the reassigned moments.
//
// Uses the same chunk-native run-copy kernel as Relocate; `threads`
// parallelises the data movement with bit-identical results. `cancel` as
// in Relocate: a cancelled pass's output must be discarded.
Result<Cube> Split(const Cube& in, int varying_dim, const ChangeRelation& r,
                   int threads = 1, const CancellationToken& cancel = {});

// Serial cell-at-a-time Split, the oracle for equivalence tests/bench.
Result<Cube> SplitReference(const Cube& in, int varying_dim,
                            const ChangeRelation& r);

// ---------------------------------------------------------------------------
// Introduce — hypothetical new dimension values (positive schema delta)
// ---------------------------------------------------------------------------
//
// The relocate/split pair can only rearrange members that already exist.
// New-member introduction adds hypothetical dimension values — a new hire,
// a new department — as a positive delta over the validity-set epochs: a new
// leaf of a varying dimension receives one instance valid from `from_moment`
// onward (its epoch), and an optional allocation rule seeds its cells from
// an existing member's data.

struct NewMemberSpec {
  std::string name;    // Must not already exist in the dimension.
  std::string parent;  // Resolved by name at apply time (may itself have
                       // been introduced by an earlier spec in the batch).
  // True for a structural member (new department): no instance, no
  // positions until leaves are introduced beneath it. False for a new leaf
  // (new hire) with a single instance valid over its epoch.
  bool inner = false;
  int from_moment = 0;  // Epoch start: instance valid [from_moment, universe).

  // How the new leaf's cells are seeded (leaves only).
  enum class Seed {
    kNone,      // Introduced empty; every cell starts at ⊥.
    kClone,     // new(t, e) = factor * source(t, e) over the epoch.
    kTransfer,  // Moves factor of source's value: source keeps (1-factor).
  };
  Seed seed = Seed::kNone;
  std::string source;    // Existing leaf whose cells seed the new member.
  double factor = 0.0;   // Clone scale / transfer fraction. 0 => no delta.
};

// Applies the schema half of an introduction batch to `schema` in spec
// order: AddInnerMember for inner specs, AddMember + epoch validity for
// leaves. Shared by the operator below and by the MDX binder (which must
// bind axis references against the augmented schema with identical member
// and instance ids).
Status ApplyIntroductions(Schema* schema, int varying_dim,
                          const std::vector<NewMemberSpec>& specs);

// I(Cin, specs): the output cube over the augmented schema. Existing cells
// copy through unchanged (same chunk-native run-copy kernel as Relocate;
// bit-identical at every thread count); seeding rules are then applied
// serially in spec order, so chained introductions (a clone of a clone)
// are deterministic. `cells_seeded`, when non-null, receives the number of
// cells written (or rewritten, for kTransfer sources) by seeding rules.
Result<Cube> IntroduceMembers(const Cube& in, int varying_dim,
                              const std::vector<NewMemberSpec>& specs,
                              int threads = 1,
                              const CancellationToken& cancel = {},
                              int64_t* cells_seeded = nullptr);

// Serial cell-at-a-time Introduce, the oracle for equivalence tests.
Result<Cube> IntroduceMembersReference(const Cube& in, int varying_dim,
                                       const std::vector<NewMemberSpec>& specs,
                                       int64_t* cells_seeded = nullptr);

// ---------------------------------------------------------------------------
// Allocate — data-driven hypothetical scenarios
// ---------------------------------------------------------------------------
//
// The paper's other family of what-if scenarios keeps the structure fixed
// and moves data: "assume that 10% of PTEs' salary during first quarter in
// NY was instead given to PTEs in MA — structure stays the same but data
// allocation changes" (Sec. 1). Allocate implements exactly that shape.

struct AllocationSpec {
  // The dimension whose coordinate changes, and the single leaf position
  // the data moves FROM / TO along it (e.g. Location: NY -> MA).
  int dim = -1;
  AxisRef from;
  AxisRef to;
  // Region restrictions on other dimensions: a cell participates only when
  // its coordinate lies under the given member (e.g. Organization=PTE,
  // Time=Qtr1, Measures=Salary). Dimensions without a restriction are
  // unconstrained.
  std::vector<std::pair<int, AxisRef>> region;
  // Fraction of each participating cell's value moved, in [0, 1].
  double fraction = 0.0;
};

// For every leaf cell c in the region with c[dim] = from: subtracts
// fraction*value at c and adds it to the cell with c[dim] = to (other
// coordinates unchanged). `from` and `to` must resolve to single leaf
// positions of `dim`. The total over the cube is preserved.
Result<Cube> Allocate(const Cube& in, const AllocationSpec& spec);

// ---------------------------------------------------------------------------
// Evaluate (Definition 4.6)
// ---------------------------------------------------------------------------

// E(C1, C2): the value of cell `ref`, taking leaf values from C2 and
// evaluating C1's rules over C2's cells for derived cells. C1 and C2 must
// share dimensionality. E(C, C) is ordinary evaluation of C.
CellValue EvalOperator(const Cube& c1, const RuleSet* rules, const Cube& c2,
                       const CellRef& ref);

}  // namespace olap

#endif  // OLAP_WHATIF_OPERATORS_H_
