#ifndef OLAP_WHATIF_MERGE_GRAPH_H_
#define OLAP_WHATIF_MERGE_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cube/cube.h"

namespace olap {

// The merge dependency graph of Sec. 5.2: nodes are chunks, and an edge
// (ci, cj) means ci must be merged into cj or vice versa while computing a
// perspective cube — so neither chunk can be fully processed until both have
// been read. Undirected, simple (no self loops, no parallel edges).
class MergeGraph {
 public:
  MergeGraph() = default;

  // Adds (or finds) the node for `chunk`; returns its dense node index.
  int AddNode(ChunkId chunk);
  // Adds an undirected edge between the nodes of the two chunks.
  void AddEdge(ChunkId a, ChunkId b);
  void AddEdgeByIndex(int a, int b);

  int num_nodes() const { return static_cast<int>(chunk_of_.size()); }
  int num_edges() const { return num_edges_; }
  ChunkId chunk(int node) const { return chunk_of_[node]; }
  const std::vector<int>& neighbors(int node) const { return adj_[node]; }
  int degree(int node) const { return static_cast<int>(adj_[node].size()); }
  bool HasEdge(int a, int b) const;

  int max_degree() const;

  // Node sets of the connected components, each sorted ascending.
  std::vector<std::vector<int>> ConnectedComponents() const;

 private:
  std::vector<ChunkId> chunk_of_;
  std::unordered_map<ChunkId, int> index_of_;
  std::vector<std::vector<int>> adj_;
  int num_edges_ = 0;
};

// Builds the merge dependency graph for computing a perspective cube over
// the instances of `members` in `varying_dim`: per member, the first
// instance is the merge target, and every other instance's data must be
// merged into it (the paper's Fig. 8 → Fig. 9 construction).
//
// Because relocation moves cells between instances *at the same parameter
// moment* — Cout(d, t, e) = Cin(d_t, t, e) — the dependencies connect
// chunks within the same parameter-dimension chunk column: for each source
// instance and each parameter chunk column its validity set touches, the
// target instance's chunk in that column must be co-resident with the
// source instance's chunk in that column. All other dimensions are pinned
// at position 0 (the paper's 2-D slice view of Fig. 8).
MergeGraph BuildMergeGraph(const Cube& cube, int varying_dim,
                           const std::vector<MemberId>& members);

}  // namespace olap

#endif  // OLAP_WHATIF_MERGE_GRAPH_H_
