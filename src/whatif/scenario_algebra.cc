#include "whatif/scenario_algebra.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace olap {

ScenarioSpec ScenarioSpec::FromWhatIf(const WhatIfSpec& spec) {
  ScenarioSpec s;
  s.varying_dim = spec.varying_dim;
  s.mode = spec.mode;
  s.scope_members = spec.scope_members;
  s.pebbling_read_order = spec.pebbling_read_order;
  if (!spec.introductions.empty()) {
    s.ops.push_back(ScenarioOp::Introduce(spec.introductions));
  }
  if (!spec.changes.empty()) {
    s.ops.push_back(ScenarioOp::SplitOp(spec.changes));
  }
  if (!spec.perspectives.empty()) {
    s.ops.push_back(ScenarioOp::Perspective(spec.perspectives, spec.semantics));
  }
  return s;
}

bool ScenarioSpec::canonical() const {
  // Canonical order is [introduce?, split?, perspective?]: kinds strictly
  // ascending in the Kind enum's declaration order, each at most once.
  int last = -1;
  for (const ScenarioOp& op : ops) {
    const int k = static_cast<int>(op.kind);
    if (k <= last) return false;
    last = k;
  }
  return true;
}

WhatIfSpec ScenarioSpec::CanonicalWhatIf() const {
  WhatIfSpec spec;
  spec.varying_dim = varying_dim;
  spec.mode = mode;
  spec.scope_members = scope_members;
  spec.pebbling_read_order = pebbling_read_order;
  for (const ScenarioOp& op : ops) {
    switch (op.kind) {
      case ScenarioOp::Kind::kIntroduce:
        spec.introductions = op.introductions;
        break;
      case ScenarioOp::Kind::kSplit:
        spec.changes = op.changes;
        break;
      case ScenarioOp::Kind::kPerspective:
        spec.perspectives = op.perspectives;
        spec.semantics = op.semantics;
        break;
    }
  }
  return spec;
}

namespace {

void AccumulateStats(EvalStats* into, const EvalStats& stage) {
  into->passes += stage.passes;
  into->chunk_reads += stage.chunk_reads;
  into->cells_moved += stage.cells_moved;
  into->cells_seeded += stage.cells_seeded;
  into->virtual_io_seconds += stage.virtual_io_seconds;
  into->peak_merge_chunks =
      std::max(into->peak_merge_chunks, stage.peak_merge_chunks);
}

// A general op stack, applied stage by stage: every op becomes one
// single-purpose WhatIfSpec evaluated through ComputePerspectiveCube (which
// owns the read-pass charging, stats, and cancellation polling), and only
// the stage's output cube is carried forward. By construction this makes
// Compose(ops) bit-identical to sequentially applying each op.
Result<Cube> ApplyScenarioOps(const Cube& start, const ScenarioSpec& spec,
                              const ScenarioEvalOptions& opts,
                              EvalStats* stats) {
  const Cube* cur = &start;
  std::optional<Cube> held;
  for (const ScenarioOp& op : spec.ops) {
    WhatIfSpec ws;
    ws.varying_dim = spec.varying_dim;
    // Intermediate stages only contribute their output cube; the final
    // evaluation mode is applied by the caller's PerspectiveCube.
    ws.mode = EvalMode::kNonVisual;
    ws.pebbling_read_order = spec.pebbling_read_order;
    switch (op.kind) {
      case ScenarioOp::Kind::kIntroduce:
        ws.introductions = op.introductions;
        break;
      case ScenarioOp::Kind::kSplit:
        ws.changes = op.changes;
        break;
      case ScenarioOp::Kind::kPerspective:
        ws.perspectives = op.perspectives;
        ws.semantics = op.semantics;
        break;
    }
    EvalStats stage_stats;
    Result<PerspectiveCube> stage = ComputePerspectiveCube(
        *cur, ws, opts.strategy, opts.disk, &stage_stats, opts.eval_threads,
        opts.pipeline, opts.cancel);
    if (!stage.ok()) return stage.status();
    AccumulateStats(stats, stage_stats);
    held = stage->output();
    cur = &*held;
  }
  if (!held.has_value()) return Cube(start);  // Empty stack: identity.
  return *std::move(held);
}

struct ComposeMetrics {
  Counter* runs;
  Counter* ops;
  Counter* introduced_members;
  static const ComposeMetrics& Get() {
    static ComposeMetrics m{
        MetricsRegistry::Global().counter("scenario.compose.runs"),
        MetricsRegistry::Global().counter("scenario.compose.ops"),
        MetricsRegistry::Global().counter("scenario.compose.introduced_members"),
    };
    return m;
  }
};

}  // namespace

Result<PerspectiveCube> ComputeScenario(const Cube& in,
                                        const ScenarioSpec& spec,
                                        const ScenarioEvalOptions& opts) {
  return ComposeScenarios(in, {spec}, opts);
}

Result<PerspectiveCube> ComposeScenarios(const Cube& in,
                                         const std::vector<ScenarioSpec>& specs,
                                         const ScenarioEvalOptions& opts) {
  TraceSpan span("scenario.compose");
  const ComposeMetrics& cm = ComposeMetrics::Get();
  cm.runs->Increment();
  int64_t total_ops = 0;
  int64_t introduced = 0;
  for (const ScenarioSpec& spec : specs) {
    total_ops += static_cast<int64_t>(spec.ops.size());
    for (const ScenarioOp& op : spec.ops) {
      if (op.kind == ScenarioOp::Kind::kIntroduce) {
        introduced += static_cast<int64_t>(op.introductions.size());
      }
    }
  }
  cm.ops->Increment(total_ops);
  cm.introduced_members->Increment(introduced);
  span.SetDetail("specs=" + std::to_string(specs.size()) +
                 " ops=" + std::to_string(total_ops));

  auto fail = [&span](Status status) {
    span.SetError(status);
    return status;
  };
  EvalStats local_stats;
  EvalStats* stats = opts.stats != nullptr ? opts.stats : &local_stats;

  if (specs.empty()) {
    // The identity scenario: the base cube itself, non-visual.
    *stats = EvalStats{};
    if (Status s = opts.cancel.Poll("scenario.compose"); !s.ok()) {
      return fail(s);
    }
    return PerspectiveCube(&in, Cube(in), EvalMode::kNonVisual);
  }

  if (specs.size() == 1 && specs[0].canonical()) {
    // The classic single-pass route, bit-identical to the pre-algebra
    // executor path (ComputePerspectiveCube resets and fills `stats`).
    Result<PerspectiveCube> pc = ComputePerspectiveCube(
        in, specs[0].CanonicalWhatIf(), opts.strategy, opts.disk, stats,
        opts.eval_threads, opts.pipeline, opts.cancel);
    if (!pc.ok()) return fail(pc.status());
    return pc;
  }

  *stats = EvalStats{};
  // Combined evaluation mode across the stack: visual wins.
  EvalMode combined = EvalMode::kNonVisual;
  for (const ScenarioSpec& spec : specs) {
    if (spec.mode == EvalMode::kVisual) combined = EvalMode::kVisual;
  }
  Cube current = in;
  for (const ScenarioSpec& spec : specs) {
    if (spec.canonical()) {
      EvalStats stage_stats;
      Result<PerspectiveCube> stage = ComputePerspectiveCube(
          current, spec.CanonicalWhatIf(), opts.strategy, opts.disk,
          &stage_stats, opts.eval_threads, opts.pipeline, opts.cancel);
      if (!stage.ok()) return fail(stage.status());
      AccumulateStats(stats, stage_stats);
      current = stage->output();
    } else {
      Result<Cube> next = ApplyScenarioOps(current, spec, opts, stats);
      if (!next.ok()) return fail(next.status());
      current = *std::move(next);
    }
  }
  // A single-spec stack keeps its varying dimension (so refs pinning
  // introduced or split instances route to the output cube); multi-spec
  // composition keeps the historical unattributed form.
  const int vd = specs.size() == 1 ? specs[0].varying_dim : -1;
  return PerspectiveCube(&in, std::move(current), combined, vd);
}

namespace {

struct CompareMetrics {
  Counter* runs;
  Counter* cells;
  Counter* shared_views;
  static const CompareMetrics& Get() {
    static CompareMetrics m{
        MetricsRegistry::Global().counter("scenario.compare.runs"),
        MetricsRegistry::Global().counter("scenario.compare.cells"),
        MetricsRegistry::Global().counter("scenario.compare.shared_views"),
    };
    return m;
  }
};

}  // namespace

Result<ScenarioComparison> CompareScenarios(
    const Cube& in, const std::vector<ScenarioSpec>& a,
    const std::vector<ScenarioSpec>& b, const std::vector<CellRef>& refs,
    const RuleSet* rules, const ScenarioCompareOptions& opts) {
  TraceSpan span("scenario.compare");
  const CompareMetrics& cm = CompareMetrics::Get();
  cm.runs->Increment();
  cm.cells->Increment(static_cast<int64_t>(refs.size()));
  span.SetDetail("cells=" + std::to_string(refs.size()));

  auto fail = [&span](Status status) {
    span.SetError(status);
    return status;
  };
  const CancellationToken& cancel = opts.eval.cancel;

  EvalStats stats_a, stats_b;
  ScenarioEvalOptions eval = opts.eval;
  eval.stats = &stats_a;
  Result<PerspectiveCube> pa = ComposeScenarios(in, a, eval);
  if (!pa.ok()) return fail(pa.status());
  if (Status s = cancel.Poll("scenario.compare"); !s.ok()) return fail(s);
  eval.stats = &stats_b;
  Result<PerspectiveCube> pb = ComposeScenarios(in, b, eval);
  if (!pb.ok()) return fail(pb.status());
  if (Status s = cancel.Poll("scenario.compare"); !s.ok()) return fail(s);
  if (opts.eval.stats != nullptr) {
    *opts.eval.stats = stats_a;
    AccumulateStats(opts.eval.stats, stats_b);
  }

  // Cross-scenario view sharing: when both scenarios retain derived values
  // from the same input cube (non-visual), one batched evaluator prepared
  // over the common ref set serves both sides — the shared cover views are
  // materialized once instead of per scenario.
  std::optional<BatchCellEvaluator> shared;
  const BatchCellEvaluator* batch = nullptr;
  if (opts.batched_eval && !refs.empty() &&
      pa->mode() == EvalMode::kNonVisual &&
      pb->mode() == EvalMode::kNonVisual) {
    BatchEvalOptions batch_options = opts.batch;
    batch_options.cancel = cancel;
    shared.emplace(in, nullptr, batch_options);
    shared->PrepareRefs(refs);
    if (Status s = cancel.Poll("scenario.compare"); !s.ok()) return fail(s);
    batch = &*shared;
    cm.shared_views->Increment(shared->num_scratch_views());
  }

  ScenarioComparison cmp;
  cmp.cells_compared = static_cast<int64_t>(refs.size());
  cmp.values_a.reserve(refs.size());
  cmp.values_b.reserve(refs.size());
  double l2_sq = 0.0;
  for (const CellRef& ref : refs) {
    if (Status s = cancel.Poll("scenario.compare"); !s.ok()) return fail(s);
    const CellValue va = pa->Evaluate(ref, rules, batch);
    const CellValue vb = pb->Evaluate(ref, rules, batch);
    cmp.values_a.push_back(va);
    cmp.values_b.push_back(vb);
    const bool act_a = va.has_value();
    const bool act_b = vb.has_value();
    if (act_a) ++cmp.active_a;
    if (act_b) ++cmp.active_b;
    if (act_a && act_b) ++cmp.overlap;
    if (act_b && !act_a) cmp.a_contains_b = false;
    if (act_a && !act_b) cmp.b_contains_a = false;
    const double da = va.value_or(0.0);
    const double db = vb.value_or(0.0);
    const double diff = std::fabs(da - db);
    cmp.l1 += diff;
    l2_sq += diff * diff;
    cmp.linf = std::max(cmp.linf, diff);
  }
  cmp.l2 = std::sqrt(l2_sq);
  const int64_t active_union = cmp.active_a + cmp.active_b - cmp.overlap;
  cmp.jaccard = active_union > 0
                    ? static_cast<double>(cmp.overlap) / active_union
                    : 1.0;
  return cmp;
}

}  // namespace olap
