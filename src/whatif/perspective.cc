#include "whatif/perspective.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace olap {

const char* SemanticsName(Semantics s) {
  switch (s) {
    case Semantics::kStatic:
      return "STATIC";
    case Semantics::kForward:
      return "DYNAMIC FORWARD";
    case Semantics::kExtendedForward:
      return "EXTENDED FORWARD";
    case Semantics::kBackward:
      return "DYNAMIC BACKWARD";
    case Semantics::kExtendedBackward:
      return "EXTENDED BACKWARD";
  }
  return "?";
}

const char* EvalModeName(EvalMode m) {
  return m == EvalMode::kVisual ? "VISUAL" : "NON-VISUAL";
}

Perspectives::Perspectives(std::vector<int> moments) : moments_(std::move(moments)) {
  std::sort(moments_.begin(), moments_.end());
  moments_.erase(std::unique(moments_.begin(), moments_.end()), moments_.end());
}

int Perspectives::GoverningPerspective(int t) const {
  // Last moment <= t.
  auto it = std::upper_bound(moments_.begin(), moments_.end(), t);
  if (it == moments_.begin()) return -1;
  return *(it - 1);
}

int Perspectives::RangeEnd(int perspective_index, int universe) const {
  assert(perspective_index >= 0 && perspective_index < size());
  if (perspective_index + 1 < size()) return moments_[perspective_index + 1];
  return universe;
}

std::string Perspectives::ToString() const {
  std::string out = "{";
  for (int i = 0; i < size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(moments_[i]);
  }
  out += "}";
  return out;
}

DynamicBitset Stretch(const DynamicBitset& vs_in, const Perspectives& p) {
  DynamicBitset out(vs_in.size());
  if (p.empty()) return out;
  for (int t = p.min(); t < vs_in.size(); ++t) {
    int governing = p.GoverningPerspective(t);
    if (governing >= 0 && vs_in.Test(governing)) out.Set(t);
  }
  return out;
}

namespace {

DynamicBitset Mirror(const DynamicBitset& s) {
  DynamicBitset out(s.size());
  for (int i = 0; i < s.size(); ++i) {
    if (s.Test(i)) out.Set(s.size() - 1 - i);
  }
  return out;
}

Perspectives MirrorPerspectives(const Perspectives& p, int universe) {
  std::vector<int> moments;
  moments.reserve(p.size());
  for (int m : p.moments()) moments.push_back(universe - 1 - m);
  return Perspectives(std::move(moments));
}

DynamicBitset PhiForward(const DynamicBitset& vs_in, const Perspectives& p,
                         bool extended) {
  DynamicBitset stretch = Stretch(vs_in, p);
  DynamicBitset out(vs_in.size());
  if (stretch.None()) return out;  // d does not appear in the output.
  out = stretch;
  if (extended) {
    // All points preceding Pmin belong to the instance valid at Pmin.
    if (vs_in.Test(p.min())) {
      for (int t = 0; t < p.min(); ++t) out.Set(t);
    }
  } else {
    // Points preceding Pmin keep their original assignment.
    for (int t = 0; t < p.min() && t < vs_in.size(); ++t) {
      if (vs_in.Test(t)) out.Set(t);
    }
  }
  return out;
}

}  // namespace

DynamicBitset Phi(const DynamicBitset& vs_in, const Perspectives& p,
                  Semantics semantics) {
  assert(!p.empty());
  switch (semantics) {
    case Semantics::kStatic: {
      DynamicBitset pset =
          DynamicBitset::FromVector(vs_in.size(), p.moments());
      if (vs_in.DisjointWith(pset)) return DynamicBitset(vs_in.size());
      return vs_in;  // Identity on surviving instances (Definition 4.2).
    }
    case Semantics::kForward:
      return PhiForward(vs_in, p, /*extended=*/false);
    case Semantics::kExtendedForward:
      return PhiForward(vs_in, p, /*extended=*/true);
    case Semantics::kBackward:
      return Mirror(PhiForward(Mirror(vs_in),
                               MirrorPerspectives(p, vs_in.size()),
                               /*extended=*/false));
    case Semantics::kExtendedBackward:
      return Mirror(PhiForward(Mirror(vs_in),
                               MirrorPerspectives(p, vs_in.size()),
                               /*extended=*/true));
  }
  return DynamicBitset(vs_in.size());
}

std::vector<DynamicBitset> TransformValiditySets(const Dimension& dim,
                                                 const Perspectives& p,
                                                 Semantics semantics) {
  // Per-member activity: the union of the member's input validity sets.
  // Definitions 3.3/3.4 exclude from VSout "those moments t for which no
  // instance d_t exists in Cin" (e.g. the paper's Joe in May), so the pure
  // Φ result is masked by it.
  std::unordered_map<MemberId, DynamicBitset> activity;
  for (const MemberInstance& inst : dim.instances()) {
    auto [it, inserted] = activity.try_emplace(
        inst.member, DynamicBitset(dim.parameter_leaf_count()));
    (void)inserted;
    it->second |= inst.validity;
  }
  std::vector<DynamicBitset> out;
  out.reserve(dim.num_instances());
  for (const MemberInstance& inst : dim.instances()) {
    DynamicBitset vs = Phi(inst.validity, p, semantics);
    vs &= activity.at(inst.member);
    out.push_back(std::move(vs));
  }
  return out;
}

}  // namespace olap
