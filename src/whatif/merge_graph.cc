#include "whatif/merge_graph.h"

#include <algorithm>
#include <cassert>

namespace olap {

int MergeGraph::AddNode(ChunkId chunk) {
  auto it = index_of_.find(chunk);
  if (it != index_of_.end()) return it->second;
  int node = num_nodes();
  index_of_[chunk] = node;
  chunk_of_.push_back(chunk);
  adj_.emplace_back();
  return node;
}

void MergeGraph::AddEdge(ChunkId a, ChunkId b) {
  AddEdgeByIndex(AddNode(a), AddNode(b));
}

void MergeGraph::AddEdgeByIndex(int a, int b) {
  assert(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes());
  if (a == b || HasEdge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++num_edges_;
}

bool MergeGraph::HasEdge(int a, int b) const {
  const std::vector<int>& smaller = degree(a) <= degree(b) ? adj_[a] : adj_[b];
  int other = degree(a) <= degree(b) ? b : a;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

int MergeGraph::max_degree() const {
  int mx = 0;
  for (int v = 0; v < num_nodes(); ++v) mx = std::max(mx, degree(v));
  return mx;
}

std::vector<std::vector<int>> MergeGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(num_nodes(), false);
  for (int start = 0; start < num_nodes(); ++start) {
    if (seen[start]) continue;
    std::vector<int> comp;
    std::vector<int> stack = {start};
    seen[start] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (int w : adj_[v]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

MergeGraph BuildMergeGraph(const Cube& cube, int varying_dim,
                           const std::vector<MemberId>& members) {
  const Dimension& d = cube.schema().dimension(varying_dim);
  assert(d.is_varying());
  const int param_dim = cube.schema().parameter_of(varying_dim);
  assert(param_dim >= 0);

  MergeGraph graph;
  std::vector<int> coords(cube.num_dims(), 0);
  auto chunk_at = [&](int position, int moment) -> ChunkId {
    std::fill(coords.begin(), coords.end(), 0);
    coords[varying_dim] = position;
    coords[param_dim] = moment;
    return cube.layout().ChunkOf(coords);
  };
  const int param_chunk = cube.layout().chunk_sizes()[param_dim];

  for (MemberId m : members) {
    std::vector<InstanceId> insts = d.InstancesOf(m);
    if (insts.size() < 2) continue;  // Nothing to merge.
    const int target_pos = insts[0];
    for (size_t i = 1; i < insts.size(); ++i) {
      const MemberInstance& src = d.instance(insts[i]);
      // One edge per parameter chunk column the source's validity touches.
      int last_col = -1;
      for (int t = src.validity.FindFirst(); t >= 0;
           t = src.validity.FindNext(t + 1)) {
        int col = t / param_chunk;
        if (col == last_col) continue;
        last_col = col;
        graph.AddEdge(chunk_at(target_pos, t), chunk_at(insts[i], t));
      }
    }
  }
  return graph;
}

}  // namespace olap
