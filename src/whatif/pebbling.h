#ifndef OLAP_WHATIF_PEBBLING_H_
#define OLAP_WHATIF_PEBBLING_H_

#include <vector>

#include "whatif/merge_graph.h"

namespace olap {

// Pebbling of the merge dependency graph (Sec. 5.2). Reading a chunk places
// a pebble on its node; a pebble can be removed from a node iff all of the
// node's neighbours have been pebbled (i.e. every chunk it must merge with
// has been read). The number of pebbles simultaneously in use is the number
// of chunks co-resident in memory; the goal is an order of reads minimising
// the peak.

struct PebbleResult {
  // Node visit order (one pebble placement per node; covers all nodes).
  std::vector<int> order;
  // Maximum number of simultaneously pebbled nodes.
  int peak_pebbles = 0;
};

// The paper's greedy heuristic:
//   cost(x) = min over neighbours y of deg(y) - 1   (0 for isolated nodes);
//   start each component at its minimum-cost node;
//   repeatedly (a) remove any removable pebble, else (b) place a pebble on
//   an unpebbled neighbour of the pebbled region, preferring nodes whose
//   placement lets some pebble (possibly its own) be removed, breaking ties
//   by smaller cost, then smaller node index.
// Always pebbles every node (Lemma 5.2) and never uses more than
// max_degree + 1 pebbles.
PebbleResult HeuristicPebble(const MergeGraph& g);

// Simulates pebbling the nodes in exactly the given order (placing one
// pebble per step and greedily removing every removable pebble after each
// placement); returns the peak. Used to evaluate naive chunk-read orders
// against the heuristic.
int PeakPebblesForOrder(const MergeGraph& g, const std::vector<int>& order);

// Exhaustive branch-and-bound minimiser of the peak pebble count.
// Exponential — intended for test graphs (<= ~14 nodes). Returns the
// optimal peak, or -1 when the graph exceeds `max_nodes`.
int OptimalPeakPebbles(const MergeGraph& g, int max_nodes = 14);

}  // namespace olap

#endif  // OLAP_WHATIF_PEBBLING_H_
