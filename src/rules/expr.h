#ifndef OLAP_RULES_EXPR_H_
#define OLAP_RULES_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "dimension/dimension.h"

namespace olap {

// Arithmetic expression over measures, used by cell-calculation rules
// (Sec. 2 of the paper: "Margin = Sales - COGS",
// "Margin% = Margin / COGS * 100").
//
// Null semantics for rules: any ⊥ operand makes the result ⊥, and so does
// division by zero. (This differs deliberately from roll-up aggregation,
// which *skips* ⊥ inputs.)
class Expr {
 public:
  enum class Kind { kConstant, kMeasureRef, kBinary };
  enum class Op { kAdd, kSub, kMul, kDiv };

  static std::unique_ptr<Expr> Constant(double v);
  static std::unique_ptr<Expr> MeasureRef(MemberId measure, std::string name);
  static std::unique_ptr<Expr> Binary(Op op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);

  Kind kind() const { return kind_; }
  Op op() const { return op_; }
  double constant() const { return constant_; }
  MemberId measure() const { return measure_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }

  // Collects every measure referenced in the expression tree.
  void CollectMeasures(std::vector<MemberId>* out) const;

  // Evaluates given a resolver for measure references.
  template <typename MeasureFn>  // CellValue(MemberId)
  CellValue Evaluate(const MeasureFn& measure_value) const {
    switch (kind_) {
      case Kind::kConstant:
        return CellValue(constant_);
      case Kind::kMeasureRef:
        return measure_value(measure_);
      case Kind::kBinary: {
        CellValue a = lhs_->Evaluate(measure_value);
        CellValue b = rhs_->Evaluate(measure_value);
        if (a.is_null() || b.is_null()) return CellValue::Null();
        switch (op_) {
          case Op::kAdd:
            return CellValue(a.value() + b.value());
          case Op::kSub:
            return CellValue(a.value() - b.value());
          case Op::kMul:
            return CellValue(a.value() * b.value());
          case Op::kDiv:
            if (b.value() == 0.0) return CellValue::Null();
            return CellValue(a.value() / b.value());
        }
        return CellValue::Null();
      }
    }
    return CellValue::Null();
  }

  // Round-trippable rendering, e.g. "(Sales - COGS)".
  std::string ToString() const;

  std::unique_ptr<Expr> Clone() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConstant;
  Op op_ = Op::kAdd;
  double constant_ = 0.0;
  MemberId measure_ = kInvalidMember;
  std::string measure_name_;
  std::unique_ptr<Expr> lhs_;
  std::unique_ptr<Expr> rhs_;
};

}  // namespace olap

#endif  // OLAP_RULES_EXPR_H_
