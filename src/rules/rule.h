#ifndef OLAP_RULES_RULE_H_
#define OLAP_RULES_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "cube/cube.h"
#include "dimension/schema.h"
#include "rules/expr.h"

namespace olap {

// A single scope restriction: "For Market = West" — the rule applies only
// when the cell's coordinate along `dim` is `member` or a descendant of it.
struct ScopeRestriction {
  int dim = -1;
  MemberId member = kInvalidMember;
};

// A cell-calculation rule (Sec. 2): defines the value of cells whose
// measure coordinate is `target` (optionally restricted to a scope) as a
// formula over other measures at the same non-measure coordinates.
//
// Example rules from the paper:
//   Margin = Sales - COGS
//   For Market = West, Margin = Sales - COGS
//   For Market = East, Margin = 0.93 * Sales - COGS
//   Margin% = Margin / COGS * 100
struct Rule {
  MemberId target = kInvalidMember;  // Measure this rule defines.
  std::vector<ScopeRestriction> scope;
  std::unique_ptr<Expr> formula;
  std::string source_text;  // The text it was parsed from, for diagnostics.

  Rule() = default;
  Rule(const Rule& other) { *this = other; }
  Rule& operator=(const Rule& other) {
    target = other.target;
    scope = other.scope;
    formula = other.formula ? other.formula->Clone() : nullptr;
    source_text = other.source_text;
    return *this;
  }
  Rule(Rule&&) = default;
  Rule& operator=(Rule&&) = default;
};

// An ordered collection of rules for one cube. When several rules match a
// cell, the one with the most scope restrictions wins; among equals the
// later rule wins (so specialised regional rules override a global rule, as
// in the paper's Margin example).
class RuleSet {
 public:
  RuleSet() = default;

  void Add(Rule rule) { rules_.push_back(std::move(rule)); }
  int size() const { return static_cast<int>(rules_.size()); }
  bool empty() const { return rules_.empty(); }
  const Rule& rule(int i) const { return rules_[i]; }

  // The winning rule for a cell whose measure coordinate is `measure` and
  // whose other coordinates are `ref` (schema order), or nullptr when no
  // rule matches and the default roll-up applies.
  const Rule* Match(const Schema& schema, int measure_dim, MemberId measure,
                    const CellRef& ref) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace olap

#endif  // OLAP_RULES_RULE_H_
