#ifndef OLAP_RULES_EVALUATOR_H_
#define OLAP_RULES_EVALUATOR_H_

#include <vector>

#include "agg/aggregate_cache.h"
#include "agg/batch_eval.h"
#include "common/value.h"
#include "cube/cube.h"
#include "rules/rule.h"

namespace olap {

// Evaluates arbitrary (leaf or derived) cells of a cube under a rule set:
// this is the paper's `func(C, d, t, e)` machinery (Sec. 4.3).
//
//  * A cell whose measure coordinate has a matching rule is *derived by
//    formula*: the formula's measure references are evaluated recursively at
//    the same non-measure coordinates.
//  * Otherwise a non-leaf cell is *derived by roll-up*: the ⊥-skipping sum
//    of its descendant leaf cells.
//  * Leaf cells read storage directly.
//
// Rules evaluated against a different data cube than the one that defines
// them implement the Eval operator E(C1, C2): construct the evaluator with
// C1's rules and C2 as `data` (visual mode evaluates rules on the
// perspective output cube, non-visual on the input cube).
class CellEvaluator {
 public:
  // `rules` may be null (pure roll-up cube); `cache` may be null (no
  // materialized aggregations — every derived cell scans leaves). The
  // cache, if given, must have been built from `data`. `batch` (nullable)
  // is a prepared batched evaluator over `data`; when given, cells not
  // derived by formula — including rule operands — are served through its
  // cover views instead of the per-cell cache/leaf path. All references
  // must outlive the evaluator.
  CellEvaluator(const Cube& data, const RuleSet* rules,
                const AggregateCache* cache = nullptr,
                const BatchCellEvaluator* batch = nullptr)
      : data_(data), rules_(rules), cache_(cache), batch_(batch) {}

  CellValue Evaluate(const CellRef& ref) const;

 private:
  CellValue EvaluateInternal(const CellRef& ref,
                             std::vector<MemberId>* measure_stack) const;

  const Cube& data_;
  const RuleSet* rules_;
  const AggregateCache* cache_;
  const BatchCellEvaluator* batch_;
};

}  // namespace olap

#endif  // OLAP_RULES_EVALUATOR_H_
