#include "rules/expr.h"

namespace olap {

std::unique_ptr<Expr> Expr::Constant(double v) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConstant;
  e->constant_ = v;
  return e;
}

std::unique_ptr<Expr> Expr::MeasureRef(MemberId measure, std::string name) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = Kind::kMeasureRef;
  e->measure_ = measure;
  e->measure_name_ = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(Op op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

void Expr::CollectMeasures(std::vector<MemberId>* out) const {
  switch (kind_) {
    case Kind::kConstant:
      return;
    case Kind::kMeasureRef:
      out->push_back(measure_);
      return;
    case Kind::kBinary:
      lhs_->CollectMeasures(out);
      rhs_->CollectMeasures(out);
      return;
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kConstant: {
      CellValue v(constant_);
      return v.ToString();
    }
    case Kind::kMeasureRef:
      return measure_name_;
    case Kind::kBinary: {
      const char* op_str = "?";
      switch (op_) {
        case Op::kAdd:
          op_str = " + ";
          break;
        case Op::kSub:
          op_str = " - ";
          break;
        case Op::kMul:
          op_str = " * ";
          break;
        case Op::kDiv:
          op_str = " / ";
          break;
      }
      std::string out = "(";
      out += lhs_->ToString();
      out += op_str;
      out += rhs_->ToString();
      out += ")";
      return out;
    }
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  switch (kind_) {
    case Kind::kConstant:
      return Constant(constant_);
    case Kind::kMeasureRef:
      return MeasureRef(measure_, measure_name_);
    case Kind::kBinary:
      return Binary(op_, lhs_->Clone(), rhs_->Clone());
  }
  return nullptr;
}

}  // namespace olap
