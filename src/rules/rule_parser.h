#ifndef OLAP_RULES_RULE_PARSER_H_
#define OLAP_RULES_RULE_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "dimension/schema.h"
#include "rules/rule.h"

namespace olap {

// Parses one rule in the paper's notation:
//
//   [FOR <Dim> = <Member> [AND <Dim> = <Member>]... ,] <Measure> = <expr>
//
// where <expr> is arithmetic (+ - * /, parentheses, numeric literals) over
// measure names. Member/measure names may be written bare (Sales) or
// bracketed ([Margin %]). Examples:
//
//   Margin = Sales - COGS
//   FOR Market = East, Margin = 0.93 * Sales - COGS
//   Margin% = Margin / COGS * 100
//
// Name resolution: the target and all measure references resolve in the
// schema's measure dimension; scope dimensions/members resolve by name.
Result<Rule> ParseRule(const Schema& schema, std::string_view text);

}  // namespace olap

#endif  // OLAP_RULES_RULE_PARSER_H_
