#include "rules/evaluator.h"

#include <algorithm>

#include "agg/rollup.h"

namespace olap {

CellValue CellEvaluator::Evaluate(const CellRef& ref) const {
  std::vector<MemberId> measure_stack;
  return EvaluateInternal(ref, &measure_stack);
}

CellValue CellEvaluator::EvaluateInternal(
    const CellRef& ref, std::vector<MemberId>* measure_stack) const {
  const Schema& schema = data_.schema();
  int measure_dim = schema.MeasureDimension();
  if (rules_ != nullptr && !rules_->empty() && measure_dim >= 0) {
    MemberId measure = ref[measure_dim].member;
    const Rule* rule = rules_->Match(schema, measure_dim, measure, ref);
    if (rule != nullptr) {
      // Guard against rule cycles (Margin -> Margin% -> Margin ...): a
      // measure already on the evaluation stack evaluates to ⊥.
      if (std::find(measure_stack->begin(), measure_stack->end(), measure) !=
          measure_stack->end()) {
        return CellValue::Null();
      }
      measure_stack->push_back(measure);
      CellValue out = rule->formula->Evaluate([&](MemberId m) {
        CellRef operand = ref;
        operand[measure_dim] = AxisRef::OfMember(m);
        return EvaluateInternal(operand, measure_stack);
      });
      measure_stack->pop_back();
      return out;
    }
  }
  if (batch_ != nullptr) {
    // Batched cover-view evaluation: leaf reads, view-served roll-ups, and
    // residual scans — with its own cache accounting.
    return batch_->Evaluate(ref);
  }
  if (cache_ != nullptr) {
    // Materialized aggregations: serve the roll-up from the smallest
    // covering view when one exists.
    std::optional<CellValue> cached = cache_->TryAnswer(data_, ref);
    if (cached.has_value()) return *cached;
  }
  return EvaluateCell(data_, ref);  // Leaf read or default roll-up.
}

}  // namespace olap
