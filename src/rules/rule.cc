#include "rules/rule.h"

namespace olap {

namespace {

bool ScopeMatches(const Schema& schema, const ScopeRestriction& r,
                  const CellRef& ref) {
  const Dimension& dim = schema.dimension(r.dim);
  const AxisRef& coord = ref[r.dim];
  if (coord.instance != kInvalidInstance) {
    // Instance coordinates match through the instance's path parent.
    const MemberInstance& inst = dim.instance(coord.instance);
    return dim.IsDescendantOrSelf(inst.parent, r.member) ||
           inst.member == r.member;
  }
  return dim.IsDescendantOrSelf(coord.member, r.member);
}

}  // namespace

const Rule* RuleSet::Match(const Schema& schema, int measure_dim,
                           MemberId measure, const CellRef& ref) const {
  (void)measure_dim;
  const Rule* best = nullptr;
  size_t best_specificity = 0;
  for (const Rule& rule : rules_) {
    if (rule.target != measure) continue;
    bool all = true;
    for (const ScopeRestriction& r : rule.scope) {
      if (!ScopeMatches(schema, r, ref)) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    size_t specificity = rule.scope.size() + 1;  // +1 so any match beats none.
    if (best == nullptr || specificity >= best_specificity) {
      best = &rule;
      best_specificity = specificity;
    }
  }
  return best;
}

}  // namespace olap
