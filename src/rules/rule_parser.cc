#include "rules/rule_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/strings.h"

namespace olap {

namespace {

// Minimal token stream over the rule text.
struct Token {
  enum Kind { kIdent, kNumber, kSymbol, kEnd } kind = kEnd;
  std::string text;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& peek() const { return current_; }
  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }
  bool TakeSymbol(char c) {
    if (current_.kind == Token::kSymbol && current_.text[0] == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool TakeKeyword(std::string_view kw) {
    if (current_.kind == Token::kIdent && EqualsIgnoreCase(current_.text, kw)) {
      Advance();
      return true;
    }
    return false;
  }

 private:
  void Advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = Token{Token::kEnd, "", 0.0};
      return;
    }
    char c = text_[pos_];
    if (c == '[') {  // Bracketed name: anything up to ']'.
      size_t close = text_.find(']', pos_);
      if (close == std::string_view::npos) close = text_.size();
      current_ = Token{Token::kIdent,
                       std::string(text_.substr(pos_ + 1, close - pos_ - 1)), 0.0};
      pos_ = close < text_.size() ? close + 1 : close;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '.')) {
        ++end;
      }
      std::string num(text_.substr(pos_, end - pos_));
      current_ = Token{Token::kNumber, num, std::stod(num)};
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_' || text_[end] == '%')) {
        ++end;
      }
      current_ = Token{Token::kIdent, std::string(text_.substr(pos_, end - pos_)), 0.0};
      pos_ = end;
      return;
    }
    current_ = Token{Token::kSymbol, std::string(1, c), 0.0};
    ++pos_;
  }

  std::string_view text_;
  size_t pos_ = 0;
  Token current_;
};

class RuleParser {
 public:
  RuleParser(const Schema& schema, std::string_view text)
      : schema_(schema), lexer_(text), text_(text) {}

  Result<Rule> Parse() {
    Rule rule;
    rule.source_text = std::string(StripWhitespace(text_));
    if (lexer_.TakeKeyword("FOR")) {
      OLAP_RETURN_IF_ERROR(ParseScope(&rule));
      if (!lexer_.TakeSymbol(',')) {
        return Status::InvalidArgument("expected ',' after rule scope");
      }
    }
    Result<MemberId> target = ParseMeasureName("rule target");
    if (!target.ok()) return target.status();
    rule.target = *target;
    if (!lexer_.TakeSymbol('=')) {
      return Status::InvalidArgument("expected '=' after rule target");
    }
    Result<std::unique_ptr<Expr>> expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    rule.formula = std::move(*expr);
    if (lexer_.peek().kind != Token::kEnd) {
      return Status::InvalidArgument("trailing tokens after rule expression");
    }
    return rule;
  }

 private:
  Status ParseScope(Rule* rule) {
    while (true) {
      Token dim_tok = lexer_.Take();
      if (dim_tok.kind != Token::kIdent) {
        return Status::InvalidArgument("expected dimension name in rule scope");
      }
      Result<int> dim = schema_.FindDimension(dim_tok.text);
      if (!dim.ok()) return dim.status();
      if (!lexer_.TakeSymbol('=')) {
        return Status::InvalidArgument("expected '=' in rule scope");
      }
      Token mem_tok = lexer_.Take();
      if (mem_tok.kind != Token::kIdent) {
        return Status::InvalidArgument("expected member name in rule scope");
      }
      Result<MemberId> member = schema_.dimension(*dim).FindMember(mem_tok.text);
      if (!member.ok()) return member.status();
      rule->scope.push_back(ScopeRestriction{*dim, *member});
      if (!lexer_.TakeKeyword("AND")) return Status::Ok();
    }
  }

  Result<MemberId> ParseMeasureName(const char* what) {
    Token tok = lexer_.Take();
    if (tok.kind != Token::kIdent) {
      return Status::InvalidArgument(std::string("expected measure name for ") + what);
    }
    int measure_dim = schema_.MeasureDimension();
    if (measure_dim < 0) {
      return Status::FailedPrecondition("schema has no measure dimension");
    }
    return schema_.dimension(measure_dim).FindMember(tok.text);
  }

  // expr := term (('+'|'-') term)*
  Result<std::unique_ptr<Expr>> ParseExpr() {
    Result<std::unique_ptr<Expr>> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> node = std::move(*lhs);
    while (true) {
      if (lexer_.TakeSymbol('+')) {
        Result<std::unique_ptr<Expr>> rhs = ParseTerm();
        if (!rhs.ok()) return rhs.status();
        node = Expr::Binary(Expr::Op::kAdd, std::move(node), std::move(*rhs));
      } else if (lexer_.TakeSymbol('-')) {
        Result<std::unique_ptr<Expr>> rhs = ParseTerm();
        if (!rhs.ok()) return rhs.status();
        node = Expr::Binary(Expr::Op::kSub, std::move(node), std::move(*rhs));
      } else {
        return node;
      }
    }
  }

  // term := factor (('*'|'/') factor)*
  Result<std::unique_ptr<Expr>> ParseTerm() {
    Result<std::unique_ptr<Expr>> lhs = ParseFactor();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> node = std::move(*lhs);
    while (true) {
      if (lexer_.TakeSymbol('*')) {
        Result<std::unique_ptr<Expr>> rhs = ParseFactor();
        if (!rhs.ok()) return rhs.status();
        node = Expr::Binary(Expr::Op::kMul, std::move(node), std::move(*rhs));
      } else if (lexer_.TakeSymbol('/')) {
        Result<std::unique_ptr<Expr>> rhs = ParseFactor();
        if (!rhs.ok()) return rhs.status();
        node = Expr::Binary(Expr::Op::kDiv, std::move(node), std::move(*rhs));
      } else {
        return node;
      }
    }
  }

  // factor := number | measure | '(' expr ')' | '-' factor
  Result<std::unique_ptr<Expr>> ParseFactor() {
    if (lexer_.TakeSymbol('(')) {
      Result<std::unique_ptr<Expr>> inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      if (!lexer_.TakeSymbol(')')) {
        return Status::InvalidArgument("expected ')' in rule expression");
      }
      return inner;
    }
    if (lexer_.TakeSymbol('-')) {
      Result<std::unique_ptr<Expr>> inner = ParseFactor();
      if (!inner.ok()) return inner.status();
      return std::unique_ptr<Expr>(
          Expr::Binary(Expr::Op::kSub, Expr::Constant(0.0), std::move(*inner)));
    }
    Token tok = lexer_.Take();
    if (tok.kind == Token::kNumber) {
      return std::unique_ptr<Expr>(Expr::Constant(tok.number));
    }
    if (tok.kind == Token::kIdent) {
      int measure_dim = schema_.MeasureDimension();
      if (measure_dim < 0) {
        return Status::FailedPrecondition("schema has no measure dimension");
      }
      Result<MemberId> m = schema_.dimension(measure_dim).FindMember(tok.text);
      if (!m.ok()) return m.status();
      return std::unique_ptr<Expr>(Expr::MeasureRef(*m, tok.text));
    }
    return Status::InvalidArgument("unexpected token '" + tok.text +
                                   "' in rule expression");
  }

  const Schema& schema_;
  Lexer lexer_;
  std::string_view text_;
};

}  // namespace

Result<Rule> ParseRule(const Schema& schema, std::string_view text) {
  return RuleParser(schema, text).Parse();
}

}  // namespace olap
